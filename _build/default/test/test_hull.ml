(* Tests for planar hulls and LP-based implicit hulls. *)

module H2 = Scdb_hull.Hull2d
module HL = Scdb_hull.Hull_lp
module Rng = Scdb_rng.Rng

let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 80) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let hull2d_tests =
  [
    t "square hull" (fun () ->
        let pts =
          [ [| 0.; 0. |]; [| 1.; 0. |]; [| 1.; 1. |]; [| 0.; 1. |]; [| 0.5; 0.5 |]; [| 0.2; 0.8 |] ]
        in
        let h = H2.hull pts in
        Alcotest.(check int) "4 vertices" 4 (List.length h);
        Alcotest.(check (float 1e-9)) "area" 1.0 (H2.area pts));
    t "collinear points collapse" (fun () ->
        let pts = [ [| 0.; 0. |]; [| 1.; 1. |]; [| 2.; 2. |]; [| 3.; 3. |] ] in
        Alcotest.(check (float 1e-9)) "area 0" 0.0 (H2.area pts);
        Alcotest.(check bool) "mem middle" true (H2.mem pts [| 1.5; 1.5 |]);
        Alcotest.(check bool) "mem off" false (H2.mem pts [| 1.5; 1.6 |]));
    t "few points" (fun () ->
        Alcotest.(check int) "empty" 0 (List.length (H2.hull []));
        Alcotest.(check int) "single" 1 (List.length (H2.hull [ [| 1.; 2. |] ]));
        Alcotest.(check bool) "single mem" true (H2.mem [ [| 1.; 2. |] ] [| 1.; 2. |]));
    t "duplicates removed" (fun () ->
        let pts = [ [| 0.; 0. |]; [| 0.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |] ] in
        Alcotest.(check int) "3 vertices" 3 (List.length (H2.hull pts)));
    t "to_relation round trip" (fun () ->
        let pts = [ [| 0.; 0. |]; [| 2.; 0. |]; [| 0.; 2. |] ] in
        match H2.to_relation pts with
        | Some r ->
            Alcotest.(check bool) "inside" true (Relation.mem_float r [| 0.5; 0.5 |]);
            Alcotest.(check bool) "outside" false (Relation.mem_float r [| 1.5; 1.5 |])
        | None -> Alcotest.fail "expected relation");
    t "degenerate to_tuple is none" (fun () ->
        Alcotest.(check bool) "none" true (Option.is_none (H2.to_tuple [ [| 0.; 0. |]; [| 1.; 1. |] ])));
    qt "hull contains all input points" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        let rng = Rng.create seed in
        let pts = List.init (3 + Rng.int rng 30) (fun _ -> [| Rng.uniform rng (-5.) 5.; Rng.uniform rng (-5.) 5. |]) in
        List.for_all (fun p -> H2.mem pts p) pts);
    qt "hull area monotone under extra points" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        let rng = Rng.create seed in
        let pts = List.init (4 + Rng.int rng 20) (fun _ -> [| Rng.uniform rng (-5.) 5.; Rng.uniform rng (-5.) 5. |]) in
        let extra = [| Rng.uniform rng (-5.) 5.; Rng.uniform rng (-5.) 5. |] in
        H2.area (extra :: pts) >= H2.area pts -. 1e-9);
  ]

let hull_lp_tests =
  [
    t "tetrahedron membership" (fun () ->
        let h =
          HL.of_points [| [| 0.; 0.; 0. |]; [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |]
        in
        Alcotest.(check bool) "inside" true (HL.mem h [| 0.2; 0.2; 0.2 |]);
        Alcotest.(check bool) "vertex" true (HL.mem h [| 1.; 0.; 0. |]);
        Alcotest.(check bool) "outside" false (HL.mem h [| 0.5; 0.5; 0.5 |]));
    t "empty input rejected" (fun () ->
        try
          ignore (HL.of_points [||]);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "bounding box" (fun () ->
        let h = HL.of_points [| [| 0.; 3. |]; [| 2.; -1. |] |] in
        let lo, hi = HL.bounding_box h in
        Alcotest.(check bool) "lo" true (Vec.equal_eps 1e-12 [| 0.; -1. |] lo);
        Alcotest.(check bool) "hi" true (Vec.equal_eps 1e-12 [| 2.; 3. |] hi));
    t "volume_mc of simplex corners" (fun () ->
        let rng = Rng.create 9 in
        let h = HL.of_points [| [| 0.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |] |] in
        let v = HL.volume_mc rng ~samples:4000 h in
        Alcotest.(check bool) "about 1/2" true (Float.abs (v -. 0.5) < 0.05));
    t "symmetric difference of identical sets is 0-ish" (fun () ->
        let rng = Rng.create 10 in
        let pts = [| [| 0.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |] in
        let h = HL.of_points pts in
        let reference x = x.(0) >= 0. && x.(0) <= 1. && x.(1) >= 0. && x.(1) <= 1. in
        let sd = HL.symmetric_difference_mc rng ~samples:3000 h reference ~lo:[| -0.5; -0.5 |] ~hi:[| 1.5; 1.5 |] in
        Alcotest.(check bool) "small" true (sd < 0.02));
    t "lp hull agrees with 2d hull membership" (fun () ->
        let rng = Rng.create 11 in
        let pts = Array.init 15 (fun _ -> [| Rng.uniform rng (-2.) 2.; Rng.uniform rng (-2.) 2. |]) in
        let h = HL.of_points pts in
        let lst = Array.to_list pts in
        for _ = 1 to 50 do
          let x = [| Rng.uniform rng (-2.5) 2.5; Rng.uniform rng (-2.5) 2.5 |] in
          (* skip points within 1e-6 of the hull boundary to avoid
             tolerance disagreements between the two predicates *)
          let inside_lp = HL.mem h x and inside_2d = H2.mem lst x in
          if inside_lp <> inside_2d then begin
            let shrunk = Vec.scale 0.999 x in
            if HL.mem h shrunk <> H2.mem lst shrunk then Alcotest.fail "hull membership disagreement"
          end
        done);
  ]

let suites = [ ("hull.2d", hull2d_tests); ("hull.lp", hull_lp_tests) ]
