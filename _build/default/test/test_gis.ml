(* Tests for the GIS application layer: schemas, instances, query
   language, evaluation strategies and aggregates. *)

open Scdb_gis
module VE = Scdb_polytope.Volume_exact
module Rng = Scdb_rng.Rng
module Q = Rational

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let q = Q.of_int
let cfg = Scdb_core.Convex_obs.practical_config

let schema_tests =
  [
    t "add and lookup" (fun () ->
        let s = Schema.of_list [ ("R", 2); ("S", 3) ] in
        Alcotest.(check (option int)) "R" (Some 2) (Schema.arity s "R");
        Alcotest.(check (option int)) "missing" None (Schema.arity s "T");
        Alcotest.(check (list string)) "names" [ "R"; "S" ] (Schema.names s));
    t "duplicates and bad arity rejected" (fun () ->
        List.iter
          (fun f -> try ignore (f ()); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> ())
          [
            (fun () -> Schema.of_list [ ("R", 2); ("R", 2) ]);
            (fun () -> Schema.of_list [ ("R", 0) ]);
          ]);
  ]

let instance_tests =
  [
    t "set and get" (fun () ->
        let s = Schema.of_list [ ("R", 2) ] in
        let i = Instance.set (Instance.create s) "R" (Relation.unit_cube 2) in
        Alcotest.(check bool) "present" true (Option.is_some (Instance.get i "R"));
        Alcotest.(check (list string)) "names" [ "R" ] (Instance.names i));
    t "arity mismatch rejected" (fun () ->
        let s = Schema.of_list [ ("R", 2) ] in
        try
          ignore (Instance.set (Instance.create s) "R" (Relation.unit_cube 3));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "unknown name rejected" (fun () ->
        let s = Schema.of_list [ ("R", 2) ] in
        try
          ignore (Instance.set (Instance.create s) "S" (Relation.unit_cube 2));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

let schema2 = Schema.of_list [ ("R", 2); ("S", 2); ("T", 1) ]

let inst2 =
  let i = Instance.create schema2 in
  let i = Instance.set i "R" (Relation.box [| q 0; q 0 |] [| q 2; q 1 |]) in
  let i = Instance.set i "S" (Relation.box [| q 1; q 0 |] [| q 3; q 1 |]) in
  Instance.set i "T" (Relation.box [| q 0 |] [| q 1 |])

let query_tests =
  [
    t "parse relation atoms" (fun () ->
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) /\\ S(x, y)" in
        Alcotest.(check (list string)) "names" [ "R"; "S" ] (Query.relation_names query);
        Alcotest.(check (list int)) "free" [ 0; 1 ] (Query.free_vars query));
    t "parse mixes constraints and atoms" (fun () ->
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) /\\ x + y <= 1" in
        Alcotest.(check bool) "pe" true (Query.is_positive_existential query));
    t "negation detected" (fun () ->
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) /\\ ~S(x, y)" in
        Alcotest.(check bool) "not pe" false (Query.is_positive_existential query));
    t "quantifier introduces fresh variable" (fun () ->
        let query = Query.parse ~schema:schema2 ~vars:[ "x" ] "exists y. R(x, y)" in
        Alcotest.(check (list int)) "free" [ 0 ] (Query.free_vars query);
        Alcotest.(check int) "max var" 1 (Query.max_var query));
    t "arity errors at parse time" (fun () ->
        try
          ignore (Query.parse ~schema:schema2 ~vars:[ "x" ] "R(x)");
          Alcotest.fail "expected Parse_error"
        with Parser.Parse_error _ -> ());
    t "unknown relation at parse time" (fun () ->
        try
          ignore (Query.parse ~schema:schema2 ~vars:[ "x" ] "Zzz(x)");
          Alcotest.fail "expected Parse_error"
        with Parser.Parse_error _ -> ());
    t "well_formed double-checks programmatic queries" (fun () ->
        let bad = Query.rel "R" [ 0 ] in
        Alcotest.(check bool) "error" true (Result.is_error (Query.well_formed schema2 bad)));
  ]

let eval_tests =
  [
    t "repeated argument R(x,x) restricts to the diagonal" (fun () ->
        (* R = [0,2]x[0,1]; R(x,x) holds iff 0 <= x <= 1 *)
        let query = Query.rel "R" [ 0; 0 ] in
        let f = Eval.unfold inst2 query in
        Alcotest.(check bool) "0.5 in" true (Formula.eval f [| Q.of_ints 1 2 |]);
        Alcotest.(check bool) "1.5 out" false (Formula.eval f [| Q.of_ints 3 2 |]));
    t "query pretty printer mentions relation names" (fun () ->
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) /\\ ~S(x, y)" in
        let s = Format.asprintf "%a" Query.pp query in
        Alcotest.(check bool) "has R" true (String.length s > 0 && String.index_opt s 'R' <> None);
        Alcotest.(check bool) "has S" true (String.index_opt s 'S' <> None));
    t "unfold fails on unpopulated relation" (fun () ->
        let inst = Instance.create schema2 in
        try
          ignore (Eval.unfold inst (Query.rel "R" [ 0; 1 ]));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "coverage rejects mismatched window" (fun () ->
        let rng = Rng.create 0 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y)" in
        let window = Relation.unit_cube 3 in
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Aggregate.coverage rng inst2 ~free_dim:2 Aggregate.Exact ~window query)));
    t "unfold renames relation variables" (fun () ->
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(y, x)" in
        let f = Eval.unfold inst2 query in
        (* R(y,x): y ranges over [0,2], x over [0,1] *)
        Alcotest.(check bool) "in" true (Formula.eval f [| q 1; q 2 |]);
        Alcotest.(check bool) "out" false (Formula.eval f [| q 2; q 1 |]));
    t "symbolic evaluation: intersection area" (fun () ->
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) /\\ S(x, y)" in
        let r = Eval.symbolic inst2 ~free_dim:2 query in
        Alcotest.(check string) "area 1" "1" (Q.to_string (VE.volume_relation r)));
    t "symbolic evaluation: projection" (fun () ->
        let query = Query.parse ~schema:schema2 ~vars:[ "x" ] "exists y. R(x, y) /\\ y <= 1/2" in
        let r = Eval.symbolic inst2 ~free_dim:1 query in
        Alcotest.(check string) "length 2" "2" (Q.to_string (VE.volume_relation r)));
    ts "approximate volume matches symbolic (union query)" (fun () ->
        let rng = Rng.create 40 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) \\/ S(x, y)" in
        let exact = Q.to_float (VE.volume_relation (Eval.symbolic inst2 ~free_dim:2 query)) in
        match Eval.compile ~config:cfg rng inst2 ~free_dim:2 query with
        | Error e -> Alcotest.fail e
        | Ok o ->
            let approx = Scdb_core.Observable.volume o rng ~eps:0.2 ~delta:0.2 in
            Alcotest.(check bool)
              (Printf.sprintf "exact=%.2f approx=%.2f" exact approx)
              true
              (Float.abs (approx -. exact) /. exact < 0.2));
    ts "approximate volume matches symbolic (existential query)" (fun () ->
        let rng = Rng.create 41 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x" ] "exists y. R(x, y)" in
        let exact = Q.to_float (VE.volume_relation (Eval.symbolic inst2 ~free_dim:1 query)) in
        match Eval.compile ~config:cfg rng inst2 ~free_dim:1 query with
        | Error e -> Alcotest.fail e
        | Ok o ->
            let approx = Scdb_core.Observable.volume o rng ~eps:0.25 ~delta:0.25 in
            Alcotest.(check bool)
              (Printf.sprintf "exact=%.2f approx=%.2f" exact approx)
              true
              (Float.abs (approx -. exact) /. exact < 0.25));
    ts "guarded difference compiles" (fun () ->
        let rng = Rng.create 42 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) /\\ ~S(x, y)" in
        match Eval.compile ~config:cfg rng inst2 ~free_dim:2 query with
        | Error e -> Alcotest.fail e
        | Ok o ->
            let v = Scdb_core.Observable.volume o rng ~eps:0.2 ~delta:0.2 in
            Alcotest.(check bool) "area 1" true (Float.abs (v -. 1.0) < 0.25));
    t "difference under quantifier rejected" (fun () ->
        let rng = Rng.create 0 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x" ] "exists y. R(x, y) /\\ ~S(x, y)" in
        Alcotest.(check bool) "error" true
          (Result.is_error (Eval.compile ~config:cfg rng inst2 ~free_dim:1 query)));
    t "universal quantification rejected" (fun () ->
        let rng = Rng.create 0 in
        let query = Query.neg (Query.exists [ 1 ] (Query.neg (Query.rel "R" [ 0; 1 ]))) in
        Alcotest.(check bool) "error" true
          (Result.is_error (Eval.compile ~config:cfg rng inst2 ~free_dim:1 query)));
    ts "reconstruction of a positive existential query" (fun () ->
        let rng = Rng.create 43 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) \\/ S(x, y)" in
        match Eval.reconstruct ~config:cfg ~samples_per_piece:100 rng inst2 ~free_dim:2 query with
        | Error e -> Alcotest.fail e
        | Ok rec_set ->
            let reference x =
              Relation.mem_float (Eval.symbolic inst2 ~free_dim:2 query) x
            in
            let sd =
              Scdb_core.Reconstruct.symmetric_difference_mc rng ~samples:5000 rec_set reference
                ~lo:[| 0.; 0. |] ~hi:[| 3.; 1. |]
            in
            Alcotest.(check bool) (Printf.sprintf "sd=%.3f" sd) true (sd < 0.45));
    t "reconstruction rejects negation" (fun () ->
        let rng = Rng.create 0 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) /\\ ~S(x, y)" in
        Alcotest.(check bool) "error" true
          (Result.is_error (Eval.reconstruct rng inst2 ~free_dim:2 query)));
  ]

let aggregate_tests =
  [
    t "exact area of query" (fun () ->
        let rng = Rng.create 44 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) /\\ S(x, y)" in
        match Aggregate.volume rng inst2 ~free_dim:2 Aggregate.Exact query with
        | Ok v -> Alcotest.(check (float 1e-9)) "area" 1.0 v
        | Error e -> Alcotest.fail e);
    t "grid area of query" (fun () ->
        let rng = Rng.create 45 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) \\/ S(x, y)" in
        match Aggregate.volume rng inst2 ~free_dim:2 (Aggregate.Grid 0.05) query with
        | Ok v -> Alcotest.(check bool) "area 3" true (Float.abs (v -. 3.0) < 0.15)
        | Error e -> Alcotest.fail e);
    ts "sampling area of query" (fun () ->
        let rng = Rng.create 46 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y)" in
        match
          Aggregate.volume ~config:cfg rng inst2 ~free_dim:2
            (Aggregate.Sampling { eps = 0.2; delta = 0.2 }) query
        with
        | Ok v -> Alcotest.(check bool) "area 2" true (Float.abs (v -. 2.0) < 0.4)
        | Error e -> Alcotest.fail e);
    t "coverage fraction" (fun () ->
        let rng = Rng.create 47 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y)" in
        let window = Relation.box [| q 0; q 0 |] [| q 4; q 1 |] in
        match Aggregate.coverage rng inst2 ~free_dim:2 Aggregate.Exact ~window query with
        | Ok f -> Alcotest.(check (float 1e-9)) "half" 0.5 f
        | Error e -> Alcotest.fail e);
    ts "average aggregate" (fun () ->
        let rng = Rng.create 48 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y)" in
        match
          Aggregate.average ~config:cfg rng inst2 ~free_dim:2 ~samples:400 query ~f:(fun p -> p.(0))
        with
        | Ok m -> Alcotest.(check bool) "mean x = 1" true (Float.abs (m -. 1.0) < 0.15)
        | Error e -> Alcotest.fail e);
  ]

let synth_tests =
  [
    t "parcels are inside their cells and disjoint" (fun () ->
        let rng = Rng.create 49 in
        let parcels = Synth.parcel_grid rng ~rows:2 ~cols:2 ~cell:1.0 ~jitter:0.05 in
        Alcotest.(check int) "count" 4 (List.length parcels);
        (* disjointness: exact volume of union = sum of volumes *)
        let union = List.fold_left Relation.union (List.hd parcels) (List.tl parcels) in
        let sum =
          List.fold_left (fun acc p -> Q.add acc (VE.volume_relation p)) Q.zero parcels
        in
        Alcotest.(check string) "disjoint" (Q.to_string sum)
          (Q.to_string (VE.volume_relation union)));
    t "road has expected area" (fun () ->
        let r = Synth.road ~from:(0.0, 0.0) ~to_:(3.0, 4.0) ~width:0.5 in
        (* length 5, width 0.5 -> area 2.5 *)
        let v = Q.to_float (VE.volume_relation r) in
        Alcotest.(check (float 1e-6)) "area" 2.5 v);
    t "elevation prism volume = base area * height" (fun () ->
        let base = Relation.box [| q 0; q 0 |] [| q 2; q 1 |] in
        let prism = Synth.elevation_prism ~base ~height:(Q.of_ints 3 2) in
        Alcotest.(check string) "volume 3" "3" (Q.to_string (VE.volume_relation prism)));
    t "land use instance is fully populated" (fun () ->
        let rng = Rng.create 50 in
        let inst = Synth.land_use_instance rng ~extent:9.0 in
        List.iter
          (fun name ->
            Alcotest.(check bool) name true (Option.is_some (Instance.get inst name)))
          [ "Parcels"; "Lakes"; "Roads"; "Terrain" ]);
  ]


let svg_tests =
  [
    t "render produces well-formed-ish svg" (fun () ->
        let r = Relation.box [| q 0; q 0 |] [| q 1; q 1 |] in
        let doc =
          Svg.render ~width:200 ~height:100 ~lo:[| -1.0; -1.0 |] ~hi:[| 2.0; 2.0 |]
            [
              Svg.relation r;
              Svg.points ~colour:"#ff0000" [ [| 0.5; 0.5 |] ];
              Svg.polygon [ [| 0.0; 0.0 |]; [| 1.0; 0.0 |]; [| 0.5; 1.0 |] ];
            ]
        in
        Alcotest.(check bool) "svg open" true (String.length doc > 0 && String.sub doc 0 4 = "<svg");
        let contains needle =
          let n = String.length needle and m = String.length doc in
          let rec go i = i + n <= m && (String.sub doc i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "polygon" true (contains "<polygon");
        Alcotest.(check bool) "circle" true (contains "<circle");
        Alcotest.(check bool) "closed" true (contains "</svg>"));
    t "y axis is flipped (north up)" (fun () ->
        let doc =
          Svg.render ~width:100 ~height:100 ~lo:[| 0.0; 0.0 |] ~hi:[| 1.0; 1.0 |]
            [ Svg.points [ [| 0.0; 1.0 |] ] ]
        in
        (* world (0,1) must land at pixel y=0 *)
        let contains needle =
          let n = String.length needle and m = String.length doc in
          let rec go i = i + n <= m && (String.sub doc i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "top" true (contains "cy=\"0.00\""));
    t "non-2d relation rejected" (fun () ->
        try
          ignore (Svg.relation (Relation.unit_cube 3));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]


let planner_tests =
  [
    t "low-dimension quantifier-free query plans exact" (fun () ->
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y)" in
        let est = Planner.plan inst2 ~free_dim:2 query in
        Alcotest.(check bool) "exact" true (est.Planner.strategy = Planner.Use_exact));
    t "many quantified variables plan sampling" (fun () ->
        (* build exists-heavy query programmatically: exists 5 vars over R plus constraints *)
        let body =
          Query.conj
            (Query.rel "R" [ 0; 1 ]
            :: List.init 5 (fun i ->
                   Query.constr (Atom.le (Term.var (2 + i)) (Term.var 0))))
        in
        let query = Query.exists [ 2; 3; 4; 5; 6 ] body in
        let est = Planner.plan inst2 ~free_dim:2 query in
        (match est.Planner.strategy with
        | Planner.Use_sampling _ -> ()
        | Planner.Use_exact -> Alcotest.fail "expected sampling, got exact"
        | Planner.Use_grid _ -> Alcotest.fail "expected sampling, got grid"));
    t "cost model monotone in quantifiers" (fun () ->
        let base = Query.rel "R" [ 0; 1 ] in
        let q1 = Query.exists [ 2 ] (Query.conj [ base; Query.constr (Atom.le (Term.var 2) (Term.var 0)) ]) in
        let c0 = Planner.cost_exact inst2 ~free_dim:2 base in
        let c1 = Planner.cost_exact inst2 ~free_dim:2 q1 in
        Alcotest.(check bool) "monotone" true (c1 > c0));
    ts "run executes the chosen plan" (fun () ->
        let rng = Rng.create 70 in
        let query = Query.parse ~schema:schema2 ~vars:[ "x"; "y" ] "R(x, y) /\\ S(x, y)" in
        match Planner.run rng inst2 ~free_dim:2 query with
        | Ok (v, est) ->
            Alcotest.(check bool) ("cost " ^ est.Planner.reason) true (est.Planner.predicted_cost > 0.0);
            Alcotest.(check bool) "value near 1" true (Float.abs (v -. 1.0) < 0.25)
        | Error e -> Alcotest.fail e);
  ]


let wkt_tests =
  [
    t "export square and re-import" (fun () ->
        let r = Relation.box [| q 0; q 0 |] [| q 2; q 1 |] in
        let wkt = Wkt.of_relation r in
        Alcotest.(check bool) "POLYGON" true (String.length wkt >= 7 && String.sub wkt 0 7 = "POLYGON");
        match Wkt.to_relation wkt with
        | Error e -> Alcotest.fail e
        | Ok r' ->
            List.iter
              (fun (a, b) ->
                let x = [| Q.of_ints a 2; Q.of_ints b 2 |] in
                Alcotest.(check bool) "same membership" (Relation.mem r x) (Relation.mem r' x))
              [ (1, 1); (3, 1); (5, 1); (-1, 0); (4, 3) ]);
    t "multipolygon round trip" (fun () ->
        let r =
          Relation.union
            (Relation.box [| q 0; q 0 |] [| q 1; q 1 |])
            (Relation.box [| q 3; q 0 |] [| q 4; q 1 |])
        in
        let wkt = Wkt.of_relation r in
        Alcotest.(check bool) "MULTI" true (String.sub wkt 0 12 = "MULTIPOLYGON");
        match Wkt.to_relation wkt with
        | Error e -> Alcotest.fail e
        | Ok r' -> Alcotest.(check int) "two tuples" 2 (List.length (Relation.tuples r')));
    t "empty relation" (fun () ->
        Alcotest.(check string) "empty" "POLYGON EMPTY" (Wkt.of_relation (Relation.make ~dim:2 []));
        match Wkt.to_relation "POLYGON EMPTY" with
        | Ok r -> Alcotest.(check bool) "empty back" true (Relation.is_syntactically_empty r)
        | Error e -> Alcotest.fail e);
    t "non-convex ring rejected" (fun () ->
        let wkt = "POLYGON ((0 0, 4 0, 4 4, 2 1, 0 4, 0 0))" in
        Alcotest.(check bool) "error" true (Result.is_error (Wkt.to_relation wkt)));
    t "garbage rejected" (fun () ->
        List.iter
          (fun s -> Alcotest.(check bool) s true (Result.is_error (Wkt.to_relation s)))
          [ "CIRCLE (0 0, 1)"; "POLYGON ((0 0, 1 1))"; "POLYGON ((0 0, 1 0, 0 1, 0 0"; "" ]);
  ]

let suites =
  [
    ("gis.schema", schema_tests);
    ("gis.instance", instance_tests);
    ("gis.query", query_tests);
    ("gis.eval", eval_tests);
    ("gis.aggregate", aggregate_tests);
    ("gis.synth", synth_tests);
    ("gis.svg", svg_tests);
    ("gis.planner", planner_tests);
    ("gis.wkt", wkt_tests);
  ]
