(* Tests for Fourier–Motzkin elimination and LP redundancy removal. *)

module FM = Scdb_qe.Fourier_motzkin
module Red = Scdb_qe.Redundancy
module VE = Scdb_polytope.Volume_exact
module Rng = Scdb_rng.Rng
module Q = Rational

let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 60) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let q = Q.of_int

let vol = VE.volume_relation

let redundancy_tests =
  [
    t "is_empty" (fun () ->
        let contradiction =
          [ Atom.le (Term.var 0) Term.zero; Atom.ge (Term.var 0) (Term.const Q.one) ]
        in
        Alcotest.(check bool) "empty" true (Red.is_empty contradiction);
        Alcotest.(check bool) "nonempty" false
          (Red.is_empty [ Atom.le (Term.var 0) (Term.const Q.one) ]));
    t "is_full_dim_nonempty" (fun () ->
        let box = List.concat (Relation.tuples (Relation.unit_cube 2)) in
        Alcotest.(check bool) "cube" true (Red.is_full_dim_nonempty box ~dim:2);
        let segment =
          Atom.eq (Term.var 0) Term.zero :: box
        in
        Alcotest.(check bool) "segment flat" false (Red.is_full_dim_nonempty segment ~dim:2));
    t "prune removes implied" (fun () ->
        let tuple =
          [
            Atom.le (Term.var 0) (Term.const Q.one);
            Atom.le (Term.var 0) (Term.const (q 5)) (* implied *);
            Atom.ge (Term.var 0) Term.zero;
          ]
        in
        Alcotest.(check int) "pruned" 2 (List.length (Red.prune tuple)));
    t "prune keeps binding constraints" (fun () ->
        let tuple = List.concat (Relation.tuples (Relation.unit_cube 2)) in
        Alcotest.(check int) "all four" 4 (List.length (Red.prune tuple)));
    t "implies_atom" (fun () ->
        let tuple = [ Atom.le (Term.var 0) (Term.const Q.one); Atom.ge (Term.var 0) Term.zero ] in
        Alcotest.(check bool) "implied" true
          (Red.implies_atom tuple (Atom.le (Term.var 0) (Term.const (q 2))));
        Alcotest.(check bool) "not implied" false
          (Red.implies_atom tuple (Atom.le (Term.var 0) (Term.const (Q.of_ints 1 2)))));
  ]

let fm_tests =
  [
    t "interval projection" (fun () ->
        (* exists y. x <= y <= 1 /\ x >= 0   ===   0 <= x <= 1 *)
        let f = Parser.parse ~vars:[ "x" ] "exists y. x <= y /\\ y <= 1 /\\ x >= 0" in
        let g = FM.eliminate f in
        Alcotest.(check bool) "qf" true (Formula.is_quantifier_free g);
        let r = Relation.of_formula ~dim:1 g in
        Alcotest.(check string) "volume" "1" (Q.to_string (vol r)));
    t "equality pivot" (fun () ->
        let f =
          Parser.parse ~vars:[ "x"; "y" ]
            "exists z. z = x + y /\\ 0 <= z /\\ z <= 1 /\\ x >= 0 /\\ y >= 0"
        in
        let r = Relation.of_formula ~dim:2 (FM.eliminate f) in
        Alcotest.(check string) "half unit triangle" "1/2" (Q.to_string (vol r)));
    t "projection of 3-simplex" (fun () ->
        let s3 = Relation.standard_simplex 3 in
        let proj = FM.project s3 ~keep:[ 0; 1 ] in
        Alcotest.(check string) "triangle" "1/2" (Q.to_string (vol proj)));
    t "projection keeps order" (fun () ->
        (* project box [0,1]x[0,2]x[0,3] keeping (z, x) -> box [0,3]x[0,1] *)
        let b = Relation.box [| q 0; q 0; q 0 |] [| q 1; q 2; q 3 |] in
        let p = FM.project b ~keep:[ 2; 0 ] in
        Alcotest.(check bool) "in" true (Relation.mem p [| Q.of_ints 5 2; Q.of_ints 1 2 |]);
        Alcotest.(check bool) "out" false (Relation.mem p [| Q.of_ints 1 2; Q.of_ints 5 2 |]);
        Alcotest.(check string) "area 3" "3" (Q.to_string (vol p)));
    t "unsatisfiable quantified formula" (fun () ->
        let f = Parser.parse ~vars:[ "x" ] "exists y. y <= 0 /\\ y >= 1 /\\ x >= 0" in
        Alcotest.(check bool) "false" true (Formula.equal Formula.fls (FM.eliminate f)));
    t "forall elimination" (fun () ->
        (* forall y in R: y>=0 \/ y<=x  is true iff ... for all y: (y >= 0 or y <= x);
           for y very negative we need y <= x to fail? it holds iff x >= ...
           take simpler: forall y. 0 <= y <= 1 -> y <= x   ===   x >= 1 *)
        let f = Parser.parse ~vars:[ "x" ] "forall y. (0 <= y /\\ y <= 1) -> y <= x" in
        let g = FM.eliminate f in
        let r1 = Formula.eval (Formula.nnf g) [| q 1 |] in
        let r0 = Formula.eval (Formula.nnf g) [| Q.of_ints 1 2 |] in
        Alcotest.(check bool) "x=1 in" true r1;
        Alcotest.(check bool) "x=1/2 out" false r0);
    t "stats count work" (fun () ->
        let tuple = List.concat (Relation.tuples (Relation.standard_simplex 4)) in
        let _, stats = FM.eliminate_vars_tuple_stats [ 3; 2 ] tuple in
        Alcotest.(check bool) "generated" true (stats.FM.constraints_generated > 0));
    qt "projection preserves membership" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        (* Random 3D convex tuple; FM projection to 2D must agree with
           "exists z" checked by sampling z. *)
        let rng = Rng.create seed in
        let atoms =
          List.init 6 (fun _ ->
              let te =
                Term.make
                  [ (0, q (Rng.int rng 5 - 2)); (1, q (Rng.int rng 5 - 2)); (2, q (Rng.int rng 5 - 2)) ]
                  (q (-1 - Rng.int rng 3))
              in
              Atom.make te Atom.Le)
        in
        let cube = List.concat (Relation.tuples (Relation.cube 3 (q 2))) in
        let tuple = atoms @ cube in
        let projected = FM.eliminate_vars_tuple [ 2 ] tuple in
        (* check on a small grid of (x,y) points *)
        List.for_all
          (fun gx ->
            List.for_all
              (fun gy ->
                let x = Q.of_ints gx 1 and y = Q.of_ints gy 1 in
                let in_proj = Dnf.tuple_holds projected [| x; y |] in
                (* exists z in [-2,2] (endpoints + rational samples) *)
                let zs = List.init 41 (fun i -> Q.of_ints (i - 20) 10) in
                let exists_z = List.exists (fun z -> Dnf.tuple_holds tuple [| x; y; z |]) zs in
                (* sampling z can only under-approximate: so require
                   exists_z => in_proj (soundness direction is exact) *)
                (not exists_z) || in_proj)
              [ -2; -1; 0; 1; 2 ])
          [ -2; -1; 0; 1; 2 ]);
    qt "FM projection iff fiber feasible (exact LP)" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        (* Exact both-direction check: a rational point y is in the
           FM-projection of a tuple iff the fiber system over y is
           LP-feasible. *)
        let rng = Rng.create seed in
        let atoms =
          List.init 5 (fun _ ->
              let te =
                Term.make
                  [ (0, q (Rng.int rng 5 - 2)); (1, q (Rng.int rng 5 - 2)); (2, q (Rng.int rng 5 - 2)) ]
                  (q (Rng.int rng 5 - 3))
              in
              Atom.make te Atom.Le)
        in
        let cube = List.concat (Relation.tuples (Relation.cube 3 (q 2))) in
        let tuple = atoms @ cube in
        let projected = FM.eliminate_vars_tuple [ 2 ] tuple in
        List.for_all
          (fun gx ->
            List.for_all
              (fun gy ->
                let x = Q.of_ints gx 2 and y = Q.of_ints gy 2 in
                let in_proj = Dnf.tuple_holds projected [| x; y |] in
                (* fiber over (x, y): substitute into the tuple, keep var 2 *)
                let fiber =
                  List.map
                    (fun a -> Atom.subst (Atom.subst a 0 (Term.const x)) 1 (Term.const y))
                    tuple
                in
                let fiber = List.map (fun a -> Atom.rename a (fun _ -> 0)) fiber in
                let sys_a, sys_b = Red.tuple_to_system fiber in
                let feasible = Scdb_lp.Exact_simplex.is_feasible ~a:sys_a ~b:sys_b in
                in_proj = feasible)
              [ -4; -1; 0; 2; 3 ])
          [ -4; -1; 0; 2; 3 ]);
    t "pruned and unpruned elimination agree" (fun () ->
        let s = Relation.standard_simplex 4 in
        let a = FM.project ~prune:true s ~keep:[ 0; 1 ] in
        let b = FM.project ~prune:false s ~keep:[ 0; 1 ] in
        Alcotest.(check string) "same volume" (Q.to_string (vol a)) (Q.to_string (vol b)));
  ]

let suites = [ ("qe.redundancy", redundancy_tests); ("qe.fourier_motzkin", fm_tests) ]
