(* Tests for float vectors/matrices, exact matrices and affine maps. *)

module Rng = Scdb_rng.Rng

let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let feq = Alcotest.(check (float 1e-9))

let vec_tests =
  [
    t "dot and norm" (fun () ->
        feq "dot" 11.0 (Vec.dot [| 1.; 2. |] [| 3.; 4. |]);
        feq "norm" 5.0 (Vec.norm [| 3.; 4. |]);
        feq "norm_inf" 4.0 (Vec.norm_inf [| 3.; -4. |]));
    t "basis" (fun () ->
        Alcotest.(check bool) "e1" true (Vec.equal_eps 0.0 [| 0.; 1.; 0. |] (Vec.basis 3 1)));
    t "normalize zero raises" (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Vec.normalize: zero vector") (fun () ->
            ignore (Vec.normalize [| 0.; 0. |])));
    t "dimension mismatch raises" (fun () ->
        Alcotest.check_raises "mismatch" (Invalid_argument "Vec: dimension mismatch") (fun () ->
            ignore (Vec.add [| 1. |] [| 1.; 2. |])));
    t "project_out and keep" (fun () ->
        let v = [| 10.; 20.; 30.; 40. |] in
        Alcotest.(check bool) "drop" true (Vec.equal_eps 0.0 [| 10.; 30. |] (Vec.project_out v [ 1; 3 ]));
        Alcotest.(check bool) "keep" true (Vec.equal_eps 0.0 [| 40.; 20. |] (Vec.keep v [ 3; 1 ])));
    t "lerp endpoints" (fun () ->
        let a = [| 0.; 1. |] and b = [| 2.; 5. |] in
        Alcotest.(check bool) "t=0" true (Vec.equal_eps 1e-12 a (Vec.lerp a b 0.0));
        Alcotest.(check bool) "t=1" true (Vec.equal_eps 1e-12 b (Vec.lerp a b 1.0)));
  ]

let random_mat rng n =
  Mat.init n n (fun _ _ -> Rng.uniform rng (-3.0) 3.0)

let mat_tests =
  [
    t "identity multiplication" (fun () ->
        let rng = Rng.create 1 in
        let a = random_mat rng 4 in
        Alcotest.(check bool) "aI=a" true (Mat.equal_eps 1e-12 a (Mat.mul a (Mat.identity 4))));
    t "lu solve random systems" (fun () ->
        let rng = Rng.create 2 in
        for _ = 1 to 50 do
          let n = 1 + Rng.int rng 6 in
          let a = random_mat rng n in
          let x = Vec.init n (fun _ -> Rng.uniform rng (-2.0) 2.0) in
          let b = Mat.mul_vec a x in
          match Mat.solve a b with
          | Some x' -> Alcotest.(check bool) "solution" true (Vec.equal_eps 1e-6 x x')
          | None -> () (* singular draw: legitimately skipped *)
        done);
    t "inverse" (fun () ->
        let rng = Rng.create 3 in
        let a = random_mat rng 5 in
        match Mat.inv a with
        | Some ai ->
            Alcotest.(check bool) "a*ai=I" true (Mat.equal_eps 1e-6 (Mat.identity 5) (Mat.mul a ai))
        | None -> Alcotest.fail "unexpected singular");
    t "det of singular is 0" (fun () ->
        let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
        feq "det" 0.0 (Mat.det a);
        Alcotest.(check bool) "inv none" true (Option.is_none (Mat.inv a)));
    t "det multiplicative" (fun () ->
        let rng = Rng.create 4 in
        let a = random_mat rng 4 and b = random_mat rng 4 in
        Alcotest.(check (float 1e-6)) "det(ab)" (Mat.det a *. Mat.det b) (Mat.det (Mat.mul a b)));
    t "cholesky reconstructs" (fun () ->
        let rng = Rng.create 5 in
        let m = random_mat rng 4 in
        (* m mᵀ + I is symmetric positive definite *)
        let spd = Mat.add (Mat.mul m (Mat.transpose m)) (Mat.identity 4) in
        match Mat.cholesky spd with
        | Some l ->
            Alcotest.(check bool) "llᵀ" true (Mat.equal_eps 1e-8 spd (Mat.mul l (Mat.transpose l)))
        | None -> Alcotest.fail "cholesky failed on SPD");
    t "cholesky rejects non-PD" (fun () ->
        Alcotest.(check bool) "none" true
          (Option.is_none (Mat.cholesky [| [| 1.; 2. |]; [| 2.; 1. |] |])));
    t "triangular solves" (fun () ->
        let l = [| [| 2.; 0. |]; [| 1.; 3. |] |] in
        let x = Mat.solve_lower_triangular l [| 4.; 11. |] in
        Alcotest.(check bool) "lower" true (Vec.equal_eps 1e-12 [| 2.; 3. |] x);
        let u = Mat.transpose l in
        let y = Mat.solve_upper_triangular u [| 7.; 9. |] in
        Alcotest.(check bool) "upper" true (Vec.equal_eps 1e-12 [| 2.; 3. |] y));
  ]

let q = Rational.of_int

let exact_tests =
  [
    t "rank" (fun () ->
        let m = Exact_mat.of_int_rows [ [ 1; 2; 3 ]; [ 2; 4; 6 ]; [ 1; 0; 1 ] ] in
        Alcotest.(check int) "rank" 2 (Exact_mat.rank m));
    t "det exact" (fun () ->
        let m = Exact_mat.of_int_rows [ [ 2; 0 ]; [ 1; 3 ] ] in
        Alcotest.(check string) "det" "6" (Rational.to_string (Exact_mat.det m)));
    t "solve exact" (fun () ->
        let m = Exact_mat.of_int_rows [ [ 2; 1 ]; [ 1; 3 ] ] in
        match Exact_mat.solve m [| q 5; q 10 |] with
        | Some x ->
            Alcotest.(check string) "x0" "1" (Rational.to_string x.(0));
            Alcotest.(check string) "x1" "3" (Rational.to_string x.(1))
        | None -> Alcotest.fail "unexpectedly singular");
    t "inv exact round trip" (fun () ->
        let m = Exact_mat.of_int_rows [ [ 1; 2 ]; [ 3; 5 ] ] in
        match Exact_mat.inv m with
        | Some mi -> Alcotest.(check bool) "m*mi=I" true (Exact_mat.equal (Exact_mat.identity 2) (Exact_mat.mul m mi))
        | None -> Alcotest.fail "unexpectedly singular");
    t "inv singular is none" (fun () ->
        let m = Exact_mat.of_int_rows [ [ 1; 2 ]; [ 2; 4 ] ] in
        Alcotest.(check bool) "none" true (Option.is_none (Exact_mat.inv m)));
    qt "float det agrees with exact det" (QCheck.make QCheck.Gen.(int_range 0 10_000)) (fun seed ->
        let rng = Rng.create seed in
        let n = 1 + Rng.int rng 4 in
        let ints = Array.init n (fun _ -> Array.init n (fun _ -> Rng.int rng 9 - 4)) in
        let fm = Array.map (Array.map float_of_int) ints in
        let em = Array.map (Array.map q) ints in
        Float.abs (Mat.det fm -. Rational.to_float (Exact_mat.det em)) < 1e-6);
  ]

let affine_tests =
  [
    t "apply/inverse round trip" (fun () ->
        let rng = Rng.create 6 in
        let a = random_mat rng 3 in
        match Affine.make a [| 1.; -2.; 0.5 |] with
        | None -> Alcotest.fail "singular draw"
        | Some f ->
            let x = [| 0.3; 0.7; -1.1 |] in
            Alcotest.(check bool) "roundtrip" true
              (Vec.equal_eps 1e-8 x (Affine.apply_inverse f (Affine.apply f x))));
    t "compose applies right-to-left" (fun () ->
        let f = Affine.translation [| 1.; 0. |] in
        let g = Option.get (Affine.scaling [| 2.; 2. |]) in
        let h = Affine.compose f g in
        Alcotest.(check bool) "fg" true (Vec.equal_eps 1e-12 [| 3.; 2. |] (Affine.apply h [| 1.; 1. |])));
    t "volume scale" (fun () ->
        let f = Option.get (Affine.scaling [| 2.; 3. |]) in
        feq "scale" 6.0 (Affine.volume_scale f);
        feq "inv scale" (1.0 /. 6.0) (Affine.volume_scale (Affine.inverse f)));
    t "singular scaling rejected" (fun () ->
        Alcotest.(check bool) "none" true (Option.is_none (Affine.scaling [| 1.; 0. |])));
  ]

let suites =
  [
    ("linalg.vec", vec_tests);
    ("linalg.mat", mat_tests);
    ("linalg.exact", exact_tests);
    ("linalg.affine", affine_tests);
  ]
