(* Tests for terms, atoms, formulas, DNF, relations and the parser. *)

module Q = Rational

let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let q = Q.of_int
let qi = Q.of_ints

let term_str te = Format.asprintf "%a" Term.pp te

let term_tests =
  [
    t "construction and printing" (fun () ->
        let te = Term.make [ (0, q 2); (1, q (-1)) ] (q 3) in
        Alcotest.(check string) "print" "2*x0 - x1 + 3" (term_str te));
    t "normalization drops zeros" (fun () ->
        let te = Term.make [ (0, q 1); (0, q (-1)) ] Q.zero in
        Alcotest.(check bool) "is_const" true (Term.is_const te);
        Alcotest.(check bool) "equal zero" true (Term.equal te Term.zero));
    t "eval exact" (fun () ->
        let te = Term.make [ (0, qi 1 2); (2, q 3) ] (q (-1)) in
        let v = Term.eval te [| q 4; q 0; q 2 |] in
        Alcotest.(check string) "value" "7" (Q.to_string v));
    t "eval_float matches eval" (fun () ->
        let te = Term.make [ (0, qi 1 4); (1, q (-2)) ] (qi 3 2) in
        let exact = Q.to_float (Term.eval te [| q 2; q 1 |]) in
        Alcotest.(check (float 1e-12)) "agree" exact (Term.eval_float te [| 2.0; 1.0 |]));
    t "subst" (fun () ->
        (* x0 + x1 with x1 := 2 x0 - 1  ->  3 x0 - 1 *)
        let te = Term.add (Term.var 0) (Term.var 1) in
        let u = Term.sub (Term.scale (q 2) (Term.var 0)) (Term.const Q.one) in
        Alcotest.(check string) "subst" "3*x0 - 1" (term_str (Term.subst te 1 u)));
    t "rename merges on collision" (fun () ->
        let te = Term.add (Term.var 0) (Term.var 1) in
        let merged = Term.rename te (fun _ -> 5) in
        Alcotest.(check string) "2*x5" "2*x5" (term_str merged));
    t "to_float_row" (fun () ->
        let te = Term.make [ (1, qi 1 2) ] (q 3) in
        let w, c = Term.to_float_row 3 te in
        Alcotest.(check bool) "w" true (Vec.equal_eps 1e-12 [| 0.; 0.5; 0. |] w);
        Alcotest.(check (float 1e-12)) "c" 3.0 c);
    qt "terms are linear maps" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        let rng = Scdb_rng.Rng.create seed in
        let rand_term () =
          Term.make
            [ (0, q (Scdb_rng.Rng.int rng 9 - 4)); (1, q (Scdb_rng.Rng.int rng 9 - 4)) ]
            (q (Scdb_rng.Rng.int rng 9 - 4))
        in
        let a = rand_term () and b = rand_term () in
        let x = [| Q.of_ints (Scdb_rng.Rng.int rng 11 - 5) 2; Q.of_ints (Scdb_rng.Rng.int rng 11 - 5) 3 |] in
        (* affine evaluation is linear in the term *)
        Q.equal (Term.eval (Term.add a b) x) (Q.add (Term.eval a x) (Term.eval b x))
        && Q.equal (Term.eval (Term.scale (q 3) a) x) (Q.mul (q 3) (Term.eval a x))
        && Q.equal (Term.eval (Term.neg a) x) (Q.neg (Term.eval a x)));
    t "to_float_row range check" (fun () ->
        try
          ignore (Term.to_float_row 1 (Term.var 3));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

let atom_tests =
  [
    t "normal form and holds" (fun () ->
        (* x0 <= 3 *)
        let a = Atom.le (Term.var 0) (Term.const (q 3)) in
        Alcotest.(check bool) "2<=3" true (Atom.holds a [| q 2 |]);
        Alcotest.(check bool) "3<=3" true (Atom.holds a [| q 3 |]);
        Alcotest.(check bool) "4<=3" false (Atom.holds a [| q 4 |]));
    t "strictness" (fun () ->
        let a = Atom.lt (Term.var 0) (Term.const (q 3)) in
        Alcotest.(check bool) "3<3" false (Atom.holds a [| q 3 |]));
    t "negate is complement" (fun () ->
        let pts = List.map (fun i -> [| qi i 2 |]) [ -4; -1; 0; 1; 3; 6 ] in
        List.iter
          (fun a ->
            let negs = Atom.negate a in
            List.iter
              (fun x ->
                let original = Atom.holds a x in
                let negated = List.exists (fun n -> Atom.holds n x) negs in
                Alcotest.(check bool) "complement" (not original) negated)
              pts)
          [
            Atom.le (Term.var 0) (Term.const Q.one);
            Atom.lt (Term.var 0) (Term.const Q.one);
            Atom.eq (Term.var 0) (Term.const Q.one);
          ]);
    t "trivial detection" (fun () ->
        Alcotest.(check bool) "-1<=0 true" true
          (Atom.is_trivially_true (Atom.le (Term.const (q (-1))) Term.zero));
        Alcotest.(check bool) "1<=0 false" true
          (Atom.is_trivially_false (Atom.le (Term.const Q.one) Term.zero));
        Alcotest.(check bool) "0<0 false" true
          (Atom.is_trivially_false (Atom.lt Term.zero Term.zero)));
    t "holds_certified agrees with exact membership away from the boundary" (fun () ->
        let a = Atom.le (Term.add (Term.var 0) (Term.var 1)) (Term.const Q.one) in
        Alcotest.(check (option bool)) "inside" (Some true) (Atom.holds_certified a [| 0.25; 0.25 |]);
        Alcotest.(check (option bool)) "outside" (Some false) (Atom.holds_certified a [| 0.75; 0.75 |]);
        (* exactly on the boundary: undecidable in float precision *)
        Alcotest.(check (option bool)) "boundary" None (Atom.holds_certified a [| 0.5; 0.5 |]));
    t "holds_certified never contradicts exact arithmetic" (fun () ->
        let a = Atom.le (Term.make [ (0, Q.of_ints 1 3) ] (Q.of_ints (-1) 7)) Term.zero in
        List.iter
          (fun v ->
            let exact = Atom.holds a [| Q.of_float v |] in
            match Atom.holds_certified a [| v |] with
            | Some b -> Alcotest.(check bool) "consistent" exact b
            | None -> ())
          [ -1.0; 0.0; 0.42857; 0.43; 1.0; 3.5 ]);
    t "to_halfspace rejects equalities" (fun () ->
        try
          ignore (Atom.to_halfspace 1 (Atom.eq (Term.var 0) Term.zero));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

let formula_of_string ?(vars = [ "x"; "y" ]) s = Parser.parse ~vars s

let formula_tests =
  [
    t "smart constructors simplify" (fun () ->
        Alcotest.(check bool) "and []" true (Formula.equal Formula.tru (Formula.conj []));
        Alcotest.(check bool) "or []" true (Formula.equal Formula.fls (Formula.disj []));
        Alcotest.(check bool) "and false" true
          (Formula.equal Formula.fls (Formula.conj [ Formula.tru; Formula.fls ])));
    t "free variables" (fun () ->
        let f = formula_of_string "exists z. x + z <= 1 /\\ y >= 0" in
        Alcotest.(check (list int)) "free" [ 0; 1 ] (Formula.free_vars f));
    t "eval quantifier-free" (fun () ->
        let f = formula_of_string "x + y <= 2 /\\ (x >= 1 \\/ y >= 1)" in
        Alcotest.(check bool) "in" true (Formula.eval f [| q 1; q 1 |]);
        Alcotest.(check bool) "out" false (Formula.eval f [| q 0; q 0 |]));
    t "eval rejects quantifiers" (fun () ->
        let f = formula_of_string "exists z. z >= x" in
        try
          ignore (Formula.eval f [| q 0; q 0 |]);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "nnf eliminates negation" (fun () ->
        let f = formula_of_string "~(x <= 1 /\\ ~(y <= 2))" in
        let g = Formula.nnf f in
        let rec no_not = function
          | Formula.Not _ -> false
          | Formula.And fs | Formula.Or fs -> List.for_all no_not fs
          | Formula.Exists (_, f) | Formula.Forall (_, f) -> no_not f
          | _ -> true
        in
        Alcotest.(check bool) "no Not" true (no_not g);
        (* semantics preserved on a grid of points *)
        List.iter
          (fun (a, b) ->
            let x = [| q a; q b |] in
            Alcotest.(check bool) "same" (Formula.eval f x) (Formula.eval g x))
          [ (0, 0); (1, 2); (2, 3); (1, 3); (2, 2) ]);
    t "forall via nnf" (fun () ->
        let f = Parser.parse ~vars:[ "x" ] "forall y. y <= x \\/ y >= 0" in
        Alcotest.(check bool) "has quantifier" false (Formula.is_quantifier_free f));

    t "nnf_deep removes Not with quantifier duality" (fun () ->
        let f = formula_of_string "~(exists z. z >= x /\\ z <= y)" in
        let g = Formula.nnf_deep f in
        let rec no_not = function
          | Formula.Not _ -> false
          | Formula.And fs | Formula.Or fs -> List.for_all no_not fs
          | Formula.Exists (_, f) | Formula.Forall (_, f) -> no_not f
          | _ -> true
        in
        Alcotest.(check bool) "no Not" true (no_not g);
        Alcotest.(check bool) "has forall" true
          (match g with Formula.Forall _ -> true | _ -> false));
    t "prenex produces a quantifier-free matrix" (fun () ->
        let f =
          formula_of_string
            "(exists z. z >= x) /\\ ~(exists w. w <= y) \\/ x <= 0"
        in
        let prefix, matrix = Formula.prenex f in
        Alcotest.(check bool) "matrix qf" true (Formula.is_quantifier_free matrix);
        Alcotest.(check bool) "prefix nonempty" true (prefix <> []);
        (* round trip through of_prenex then QE agrees with direct QE *)
        let module FM = Scdb_qe.Fourier_motzkin in
        let direct = FM.eliminate f in
        let via = FM.eliminate (Formula.of_prenex (prefix, matrix)) in
        List.iter
          (fun (a, b) ->
            let x = [| qi a 2; qi b 2 |] in
            Alcotest.(check bool) "same semantics"
              (Formula.eval (Formula.nnf direct) x)
              (Formula.eval (Formula.nnf via) x))
          [ (0, 0); (1, 1); (-1, 2); (3, -2); (2, 2) ]);
    t "prenex renames to avoid capture" (fun () ->
        (* exists z over x<=z nested in a context also using index 2 *)
        let inner = Formula.exists [ 2 ] (Formula.atom (Atom.le (Term.var 0) (Term.var 2))) in
        let outer = Formula.conj [ inner; Formula.exists [ 2 ] (Formula.atom (Atom.ge (Term.var 1) (Term.var 2))) ] in
        let prefix, matrix = Formula.prenex outer in
        let bound = List.concat_map (function Formula.E vs | Formula.A vs -> vs) prefix in
        Alcotest.(check int) "two distinct binders" 2 (List.length (List.sort_uniq compare bound));
        Alcotest.(check bool) "fresh names" true (List.for_all (fun v -> v > 2) bound);
        Alcotest.(check bool) "matrix qf" true (Formula.is_quantifier_free matrix));
    qt "nnf preserves semantics" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        let rng = Scdb_rng.Rng.create seed in
        (* Random QF formula over 2 vars with small integer coefficients. *)
        let rec gen depth =
          if depth = 0 || Scdb_rng.Rng.int rng 3 = 0 then begin
            let te =
              Term.make
                [ (0, q (Scdb_rng.Rng.int rng 5 - 2)); (1, q (Scdb_rng.Rng.int rng 5 - 2)) ]
                (q (Scdb_rng.Rng.int rng 7 - 3))
            in
            Formula.atom (Atom.make te (match Scdb_rng.Rng.int rng 3 with 0 -> Atom.Le | 1 -> Atom.Lt | _ -> Atom.Eq))
          end
          else
            match Scdb_rng.Rng.int rng 3 with
            | 0 -> Formula.conj [ gen (depth - 1); gen (depth - 1) ]
            | 1 -> Formula.disj [ gen (depth - 1); gen (depth - 1) ]
            | _ -> Formula.neg (gen (depth - 1))
        in
        let f = gen 3 in
        let g = Formula.nnf f in
        List.for_all
          (fun _ ->
            let x = [| qi (Scdb_rng.Rng.int rng 9 - 4) 2; qi (Scdb_rng.Rng.int rng 9 - 4) 2 |] in
            Formula.eval f x = Formula.eval g x)
          (List.init 10 Fun.id));
  ]

let dnf_tests =
  [
    t "distribution" (fun () ->
        let f = formula_of_string "(x <= 1 \\/ y <= 1) /\\ (x >= 0 \\/ y >= 0)" in
        let tuples = Dnf.of_formula f in
        Alcotest.(check int) "4 tuples" 4 (List.length tuples));
    t "semantics preserved" (fun () ->
        let f = formula_of_string "(x <= 1 \\/ y <= 1) /\\ x + y >= 1 /\\ ~(x = y)" in
        let tuples = Dnf.of_formula f in
        List.iter
          (fun (a, b) ->
            let x = [| qi a 2; qi b 2 |] in
            Alcotest.(check bool) "agree" (Formula.eval (Formula.nnf f) x)
              (List.exists (fun tu -> Dnf.tuple_holds tu x) tuples))
          [ (0, 0); (1, 1); (2, 0); (0, 2); (3, 3); (2, 2); (1, 3) ]);
    t "limit guards blowup" (fun () ->
        let clause i =
          Formula.disj
            [
              Formula.atom (Atom.le (Term.var 0) (Term.const (q i)));
              Formula.atom (Atom.ge (Term.var 1) (Term.const (q i)));
            ]
        in
        let f = Formula.conj (List.init 18 clause) in
        try
          ignore (Dnf.of_formula ~limit:1000 f);
          Alcotest.fail "expected limit exceeded"
        with Invalid_argument _ -> ());
    t "simplify_tuple" (fun () ->
        let a = Atom.le (Term.var 0) (Term.const Q.one) in
        let trivially_true = Atom.le (Term.const (q (-5))) Term.zero in
        (match Dnf.simplify_tuple [ a; a; trivially_true ] with
        | Some [ _ ] -> ()
        | _ -> Alcotest.fail "expected a single atom");
        let contradiction = Atom.lt Term.zero Term.zero in
        Alcotest.(check bool) "none" true (Option.is_none (Dnf.simplify_tuple [ a; contradiction ])));
  ]

let relation_tests =
  [
    t "box membership" (fun () ->
        let r = Relation.box [| q 0; q 0 |] [| q 2; q 1 |] in
        Alcotest.(check bool) "in" true (Relation.mem r [| q 1; q 1 |]);
        Alcotest.(check bool) "out" false (Relation.mem r [| q 3; q 0 |]);
        Alcotest.(check bool) "float in" true (Relation.mem_float r [| 0.5; 0.5 |]));
    t "union and inter semantics" (fun () ->
        let a = Relation.box [| q 0 |] [| q 2 |] in
        let b = Relation.box [| q 1 |] [| q 3 |] in
        let u = Relation.union a b and i = Relation.inter a b in
        List.iter
          (fun v ->
            let x = [| qi v 2 |] in
            Alcotest.(check bool) "union" (Relation.mem a x || Relation.mem b x) (Relation.mem u x);
            Alcotest.(check bool) "inter" (Relation.mem a x && Relation.mem b x) (Relation.mem i x))
          [ -1; 0; 1; 2; 3; 4; 5; 6; 7 ]);
    t "diff semantics" (fun () ->
        let a = Relation.box [| q 0 |] [| q 3 |] in
        let b = Relation.box [| q 1 |] [| q 2 |] in
        let d = Relation.diff a b in
        List.iter
          (fun v ->
            let x = [| qi v 4 |] in
            Alcotest.(check bool) "diff" (Relation.mem a x && not (Relation.mem b x)) (Relation.mem d x))
          (List.init 16 (fun i -> i - 2)));
    t "to_text round trips through the parser" (fun () ->
        let r =
          Relation.union
            (Relation.box [| q 0; q 0 |] [| q 2; q 1 |])
            (Parser.parse_relation ~vars:[ "x0"; "x1" ] "x0 + x1 <= 1 /\\ x0 >= -1 /\\ x1 >= -1")
        in
        let text = Relation.to_text r in
        let r' = Parser.parse_relation ~vars:[ "x0"; "x1" ] text in
        List.iter
          (fun (a, b) ->
            let x = [| qi a 2; qi b 2 |] in
            Alcotest.(check bool) "same membership" (Relation.mem r x) (Relation.mem r' x))
          [ (0, 0); (1, 1); (3, 1); (-1, -1); (4, 4); (2, 2); (-3, 0) ]);
    t "to_text of empty relation" (fun () ->
        let r = Relation.make ~dim:1 [] in
        Alcotest.(check string) "false" "false" (Relation.to_text r));
    t "dimension check" (fun () ->
        try
          ignore (Relation.make ~dim:1 [ [ Atom.le (Term.var 3) Term.zero ] ]);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "standard shapes" (fun () ->
        let s = Relation.standard_simplex 3 in
        Alcotest.(check bool) "inside" true (Relation.mem s [| qi 1 4; qi 1 4; qi 1 4 |]);
        Alcotest.(check bool) "outside" false (Relation.mem s [| qi 1 2; qi 1 2; qi 1 2 |]);
        let c = Relation.cross_polytope 2 Q.one in
        Alcotest.(check bool) "cross in" true (Relation.mem c [| qi 1 4; qi 1 4 |]);
        Alcotest.(check bool) "cross out" false (Relation.mem c [| qi 3 4; qi 3 4 |]));
  ]

let parser_tests =
  [
    t "operator precedence" (fun () ->
        let f = formula_of_string "x <= 1 /\\ y <= 1 \\/ x >= 2" in
        (* should parse as (x<=1 /\ y<=1) \/ x>=2 *)
        Alcotest.(check bool) "or of and" true
          (match f with Formula.Or [ Formula.And _; Formula.Atom _ ] -> true | _ -> false));
    t "chained comparisons" (fun () ->
        let f = Parser.parse ~vars:[ "x" ] "0 <= x <= 1" in
        Alcotest.(check bool) "in" true (Formula.eval f [| qi 1 2 |]);
        Alcotest.(check bool) "out" false (Formula.eval f [| q 2 |]));
    t "implication desugars" (fun () ->
        let f = formula_of_string "x >= 1 -> y >= 1" in
        Alcotest.(check bool) "vacuous" true (Formula.eval (Formula.nnf f) [| q 0; q 0 |]);
        Alcotest.(check bool) "applied" false (Formula.eval (Formula.nnf f) [| q 1; q 0 |]));
    t "rational arithmetic in literals" (fun () ->
        let r = Parser.parse_relation ~vars:[ "x" ] "x / 3 <= 1 /\\ 2 * x >= 1" in
        Alcotest.(check bool) "1/2 in" true (Relation.mem r [| qi 1 2 |]);
        Alcotest.(check bool) "3 in" true (Relation.mem r [| q 3 |]);
        Alcotest.(check bool) "4 out" false (Relation.mem r [| q 4 |]));
    t "quantifier scoping and shadowing" (fun () ->
        let f = Parser.parse ~vars:[ "x" ] "exists x. x >= 0" in
        (* bound x shadows free x: free variable list must be empty *)
        Alcotest.(check (list int)) "no free vars" [] (Formula.free_vars f));
    t "syntax errors raise" (fun () ->
        List.iter
          (fun s ->
            try
              ignore (formula_of_string s);
              Alcotest.fail ("expected Parse_error on " ^ s)
            with Parser.Parse_error _ -> ())
          [ "x <= "; "x * y <= 1"; "exists . x <= 1"; "x <= 1 /\\"; "unknown_var <= 1"; "x / y <= 1" ]);
    t "non-linear rejected" (fun () ->
        try
          ignore (formula_of_string "x * x <= 1");
          Alcotest.fail "expected Parse_error"
        with Parser.Parse_error _ -> ());
    t "parse_relation rejects quantifiers" (fun () ->
        try
          ignore (Parser.parse_relation ~vars:[ "x" ] "exists y. x <= y");
          Alcotest.fail "expected Parse_error"
        with Parser.Parse_error _ -> ());

    qt "pretty-print / parse round trip" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        let rng = Scdb_rng.Rng.create seed in
        let q = Rational.of_int in
        let rec gen depth =
          if depth = 0 || Scdb_rng.Rng.int rng 3 = 0 then begin
            let te =
              Term.make
                [ (0, q (Scdb_rng.Rng.int rng 5 - 2)); (1, q (Scdb_rng.Rng.int rng 5 - 2)) ]
                (q (Scdb_rng.Rng.int rng 7 - 3))
            in
            Formula.atom (Atom.make te (if Scdb_rng.Rng.bool rng then Atom.Le else Atom.Lt))
          end
          else
            match Scdb_rng.Rng.int rng 3 with
            | 0 -> Formula.conj [ gen (depth - 1); gen (depth - 1) ]
            | 1 -> Formula.disj [ gen (depth - 1); gen (depth - 1) ]
            | _ -> Formula.neg (gen (depth - 1))
        in
        let f = gen 3 in
        QCheck.assume (f <> Formula.True && f <> Formula.False);
        let printed = Format.asprintf "%a" Formula.pp f in
        let g = Parser.parse ~vars:[ "x0"; "x1" ] printed in
        (* semantic round trip: same truth value on a grid of points *)
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                let x = [| Rational.of_ints a 2; Rational.of_ints b 2 |] in
                Formula.eval (Formula.nnf f) x = Formula.eval (Formula.nnf g) x)
              [ -3; -1; 0; 2; 5 ])
          [ -3; -1; 0; 2; 5 ]);
    t "lexer token coverage" (fun () ->
        let toks = Lexer.tokenize "x <= 1.5 /\\ y >= -2 \\/ ~(z < 3) -> a = b /\\ c <> d" in
        Alcotest.(check bool) "ends with EOF" true (List.nth toks (List.length toks - 1) = Lexer.EOF);
        Alcotest.(check bool) "has IMPLIES" true (List.mem Lexer.IMPLIES toks);
        Alcotest.(check bool) "has NEQ" true (List.mem Lexer.NEQ toks);
        (* alternative spellings *)
        let toks2 = Lexer.tokenize "x && y || !z != w" in
        Alcotest.(check bool) "&& is AND" true (List.mem Lexer.AND toks2);
        Alcotest.(check bool) "|| is OR" true (List.mem Lexer.OR toks2);
        Alcotest.(check bool) "! is NOT" true (List.mem Lexer.NOT toks2));
    t "quantifier dot vs decimal point" (fun () ->
        (* 'exists z. 1.5 <= z' must lex the first dot as DOT, the second
           as part of the literal *)
        let f = Parser.parse ~vars:[] "exists z. 1.5 <= z /\\ z <= 2" in
        Alcotest.(check bool) "parses" true (not (Formula.is_quantifier_free f)));
    t "lexer errors carry position" (fun () ->
        try
          ignore (formula_of_string "x <= #")
          (* '#' unsupported *)
        with Lexer.Lex_error (_, pos) -> Alcotest.(check int) "position" 5 pos);
  ]

let suites =
  [
    ("constr.term", term_tests);
    ("constr.atom", atom_tests);
    ("constr.formula", formula_tests);
    ("constr.dnf", dnf_tests);
    ("constr.relation", relation_tests);
    ("constr.parser", parser_tests);
  ]
