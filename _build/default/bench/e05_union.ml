(* E5 — Theorem 4.1/4.2 and Corollary 4.2 (Algorithm 1).

   Union generator and Karp–Luby volume estimator on overlapping and
   disjoint unions, against exact inclusion–exclusion ground truth, for
   growing numbers of operands m.  Also verifies that samples cover
   components proportionally to their volumes (the failure mode of a
   naive direct walk on a disconnected union). *)

module VE = Scdb_polytope.Volume_exact
module Rng = Scdb_rng.Rng

let q = Rational.of_int

let run ~fast =
  Util.header "E5: union of observables (Algorithm 1 / Corollary 4.2)";
  let rng = Util.fresh_rng () in
  let cfg = Convex_obs.practical_config in
  let params = Params.make ~gamma:0.05 ~eps:0.15 ~delta:0.1 () in
  let samples = if fast then 400 else 2000 in
  let ms = if fast then [ 2; 4 ] else [ 2; 4; 8 ] in
  let rows =
    List.map
      (fun m ->
        (* m boxes [i, i+1.5] x [0,1]: consecutive ones overlap by 0.5 *)
        let box i =
          Relation.box
            [| Rational.of_float (float_of_int i); q 0 |]
            [| Rational.of_float (float_of_int i +. 1.5); q 1 |]
        in
        let rels = List.init m box in
        let union_rel = List.fold_left Relation.union (List.hd rels) (List.tl rels) in
        let truth = VE.float_volume_relation union_rel in
        let obs = List.map (fun r -> Option.get (Convex_obs.make ~config:cfg rng r)) rels in
        let u = Union.union obs in
        let est = Observable.volume u rng ~eps:0.2 ~delta:0.2 in
        (* uniformity over m equal-width slices of the union's span *)
        let span = float_of_int m +. 0.5 in
        let counts = Array.make m 0 in
        for _ = 1 to samples do
          let x = Observable.sample_exn u rng params in
          let k = Stdlib.min (m - 1) (int_of_float (x.(0) /. span *. float_of_int m)) in
          counts.(k) <- counts.(k) + 1
        done;
        [
          string_of_int m;
          Util.fmt_f ~digits:3 truth;
          Util.fmt_f ~digits:3 est;
          Util.fmt_f (Util.rel_err ~truth est);
          Util.fmt_f (Util.tv_from_uniform counts);
        ])
      ms
  in
  Util.table
    [ ("m", 3); ("exact vol", 10); ("estimated", 10); ("rel err", 8); ("TV(slices)", 10) ]
    rows;
  Util.subheader "disjoint components get proportional mass";
  (* areas 1 and 3 -> expect 25% / 75% of samples *)
  let a = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 0; q 0 |] [| q 1; q 1 |])) in
  let b = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 5; q 0 |] [| q 8; q 1 |])) in
  let u = Union.union2 a b in
  let in_a = ref 0 in
  for _ = 1 to samples do
    if (Observable.sample_exn u rng params).(0) <= 1.0 then incr in_a
  done;
  Printf.printf "component of area 1 got %.3f of samples (expect 0.250)\n"
    (float_of_int !in_a /. float_of_int samples);
  Printf.printf
    "Expectation: relative error small for every m; slice distribution near uniform;\n\
     disjoint components weighted by volume (a direct walk could not leave one).\n"
