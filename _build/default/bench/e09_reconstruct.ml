(* E9 — Lemma 4.1 (Affentranger–Wieacker rate).

   The convex hull of N uniform samples of a polytope S approximates S
   with symmetric-difference error Θ(ln^{d-1} N / N).  We measure the
   error for growing N on a triangle and a square and report the
   normalized constant err·N/ln^{d-1}N, which should stay flat. *)

module P = Scdb_polytope.Polytope
module Rng = Scdb_rng.Rng

let run ~fast =
  Util.header "E9: hull-of-samples reconstruction rate (Lemma 4.1)";
  let rng = Util.fresh_rng () in
  let cfg = Convex_obs.practical_config in
  let ns = if fast then [ 25; 100; 400 ] else [ 25; 50; 100; 200; 400; 800 ] in
  let mc = if fast then 3000 else 10_000 in
  let bodies = [ ("triangle", P.simplex 2, 0.5); ("square", P.unit_cube 2, 1.0) ] in
  let rows =
    List.concat_map
      (fun (name, poly, area) ->
        let obs = Option.get (Convex_obs.of_polytope ~config:cfg rng poly) in
        List.map
          (fun n ->
            let r = Reconstruct.convex_hull_estimate rng obs ~n in
            let sd =
              Reconstruct.symmetric_difference_mc rng ~samples:mc r
                (fun x -> P.mem poly x)
                ~lo:[| 0.; 0. |] ~hi:[| 1.; 1. |]
            in
            let rel = sd /. area in
            let normalized = rel *. float_of_int n /. log (float_of_int n) in
            [ name; string_of_int n; Util.fmt_f sd; Util.fmt_f rel; Util.fmt_f ~digits:3 normalized ])
          ns)
      bodies
  in
  Util.table
    [ ("body", 9); ("N", 5); ("sym-diff", 9); ("relative", 9); ("err*N/lnN", 10) ]
    rows;
  Printf.printf
    "Expectation: relative error shrinks like ln N / N (d=2), i.e. the last\n\
     column is roughly constant per body — the Lemma 4.1 rate.\n"
