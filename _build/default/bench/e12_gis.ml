(* E12 — Theorem 4.4 / Algorithms 4–5 end-to-end on a GIS workload.

   A synthetic land-use database (parcels, lakes, a road, 3-D terrain
   prisms).  Three FO+LIN queries exercise union, guarded difference and
   existential projection; approximate volumes are checked against the
   fixed-dimension grid ground truth, and a positive existential query
   is reconstructed as a union of hulls (Algorithm 5). *)

open Scdb_gis
module Rng = Scdb_rng.Rng

let run ~fast =
  Util.header "E12: GIS queries end-to-end (Thm 4.4, Algorithms 4-5)";
  let rng = Util.fresh_rng () in
  let cfg = Convex_obs.practical_config in
  let extent = 9.0 in
  let inst = Synth.land_use_instance rng ~extent in
  let schema = Synth.land_use_schema in
  let gamma = if fast then 0.1 else 0.05 in
  let queries =
    [
      ("union", [ "x"; "y" ], 2, "Parcels(x, y) \\/ Roads(x, y)");
      ("difference", [ "x"; "y" ], 2, "Parcels(x, y) /\\ ~Lakes(x, y)");
      ("projection", [ "x"; "y" ], 2, "exists z. Terrain(x, y, z) /\\ z >= 1");
    ]
  in
  let rows =
    List.map
      (fun (label, vars, free_dim, text) ->
        let query = Query.parse ~schema ~vars text in
        let truth =
          match Aggregate.volume rng inst ~free_dim (Aggregate.Grid gamma) query with
          | Ok v -> v
          | Error e -> failwith e
        in
        let eps = if fast then 0.4 else 0.25 in
        let (approx, t) =
          Util.time_it (fun () ->
              Aggregate.volume ~config:cfg rng inst ~free_dim
                (Aggregate.Sampling { eps; delta = eps })
                query)
        in
        match approx with
        | Ok v ->
            [
              label;
              Util.fmt_f ~digits:2 truth;
              Util.fmt_f ~digits:2 v;
              Util.fmt_f (Util.rel_err ~truth v);
              Util.fmt_f ~digits:2 t;
            ]
        | Error e -> [ label; Util.fmt_f ~digits:2 truth; "error: " ^ e; "-"; "-" ])
      queries
  in
  Util.table
    [ ("query", 11); ("grid truth", 10); ("sampling est", 12); ("rel err", 8); ("time(s)", 8) ]
    rows;
  Util.subheader "Algorithm 5: reconstructing 'parcels or roads' as a union of hulls";
  let query = Query.parse ~schema ~vars:[ "x"; "y" ] "Parcels(x, y) \\/ Roads(x, y)" in
  let n = if fast then 60 else 150 in
  (match Eval.reconstruct ~config:cfg ~samples_per_piece:n rng inst ~free_dim:2 query with
  | Error e -> Printf.printf "reconstruction failed: %s\n" e
  | Ok rec_set ->
      let reference x =
        let f = Eval.unfold inst query in
        Formula.eval_float ~slack:1e-9 f x
      in
      let sd =
        Reconstruct.symmetric_difference_mc rng ~samples:(if fast then 3000 else 10_000) rec_set
          reference ~lo:[| 0.; 0. |] ~hi:[| extent; extent |]
      in
      let truth =
        match Aggregate.volume rng inst ~free_dim:2 (Aggregate.Grid gamma) query with
        | Ok v -> v
        | Error e -> failwith e
      in
      Printf.printf "hulls: %d   sym-diff volume: %.3f   relative: %.3f\n"
        (List.length rec_set.Reconstruct.hulls) sd (sd /. truth));
  Printf.printf
    "Expectation: sampling estimates track the grid ground truth on all three\n\
     operator shapes, and the reconstructed union of hulls has small relative\n\
     symmetric difference (Theorem 4.4's (ε,δ)-estimator).\n"
