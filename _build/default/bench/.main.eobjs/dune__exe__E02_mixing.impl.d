bench/e02_mixing.ml: Array Float List Printf Scdb_polytope Scdb_rng Scdb_sampling Stdlib Util Vec
