bench/e01_projection.ml: Array Convex_obs List Observable Option Params Printf Project Scdb_polytope Scdb_rng Stdlib Util
