bench/e09_reconstruct.ml: Convex_obs List Option Printf Reconstruct Scdb_polytope Scdb_rng Util
