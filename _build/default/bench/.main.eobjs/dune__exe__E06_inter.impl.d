bench/e06_inter.ml: Convex_obs Inter List Observable Option Params Printf Rational Relation Scdb_polytope Scdb_rng Util
