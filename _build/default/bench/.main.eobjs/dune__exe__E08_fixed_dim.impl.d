bench/e08_fixed_dim.ml: Float List Printf Relation Scdb_polytope Scdb_rng Scdb_sampling Util
