bench/e10_fm_vs_sampling.ml: Atom List Printf Project Rational Reconstruct Relation Scdb_polytope Scdb_qe Scdb_rng Term Util
