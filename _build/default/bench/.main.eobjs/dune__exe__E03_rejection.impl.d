bench/e03_rejection.ml: Array Float List Printf Scdb_polytope Scdb_rng Scdb_sampling Util
