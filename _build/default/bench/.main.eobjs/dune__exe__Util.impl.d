bench/util.ml: Array Float List Printf Scdb_rng String Unix
