bench/e11_sat.ml: Convex_obs Inter List Observable Printf Rational Sat_encode Scdb_rng Util
