bench/e07_diff.ml: Array Convex_obs Diff List Observable Option Params Printf Rational Relation Scdb_polytope Scdb_rng Util
