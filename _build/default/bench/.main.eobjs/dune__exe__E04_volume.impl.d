bench/e04_volume.ml: Float List Printf Scdb_polytope Scdb_rng Scdb_sampling Util
