bench/perf.ml: Analyze Array Bechamel Benchmark Bigint Hashtbl List Measure Printf Relation Scdb_hull Scdb_lp Scdb_polytope Scdb_qe Scdb_rng Scdb_sampling Staged Test Time Toolkit Util
