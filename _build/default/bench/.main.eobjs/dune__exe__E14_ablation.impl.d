bench/e14_ablation.ml: Array List Mat Printf Scdb_polytope Scdb_rng Scdb_sampling Util
