bench/e12_gis.ml: Aggregate Convex_obs Eval Formula List Printf Query Reconstruct Scdb_gis Scdb_rng Synth Util
