bench/e05_union.ml: Array Convex_obs List Observable Option Params Printf Rational Relation Scdb_polytope Scdb_rng Stdlib Union Util
