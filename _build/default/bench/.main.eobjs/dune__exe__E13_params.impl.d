bench/e13_params.ml: Array Convex_obs Float List Observable Option Params Printf Relation Scdb_polytope Scdb_rng Scdb_sampling Stdlib Union Util
