bench/main.mli:
