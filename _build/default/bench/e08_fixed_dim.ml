(* E8 — Theorem 3.1 vs the general machinery.

   The fixed-dimension grid method costs (R/γ)^d membership tests; the
   DFK pipeline costs poly(d).  We measure both on unit cubes of growing
   dimension and print the crossover: the grid wins in very small
   dimension, the walk wins as soon as (R/γ)^d explodes. *)

module P = Scdb_polytope.Polytope
module GV = Scdb_polytope.Gridvol
module Vol = Scdb_sampling.Volume
module Rng = Scdb_rng.Rng

let run ~fast =
  Util.header "E8: fixed-dimension grid method vs random walk (Thm 3.1)";
  let rng = Util.fresh_rng () in
  let gamma = 0.1 in
  let dims = if fast then [ 1; 2; 3; 4 ] else [ 1; 2; 3; 4; 5; 6 ] in
  let budget = if fast then 400 else 1500 in
  let rows =
    List.map
      (fun d ->
        let rel = Relation.unit_cube d in
        let grid_cells = int_of_float (Float.round ((1.0 /. gamma) ** float_of_int d)) in
        let grid_result =
          if grid_cells <= 2_000_000 then begin
            let (g, t) = Util.time_it (fun () -> GV.build ~gamma rel) in
            match g with
            | Some g -> Some (GV.volume g, GV.cells_scanned g, t)
            | None -> None
          end
          else None
        in
        let (walk_result, walk_time) =
          Util.time_it (fun () ->
              Vol.estimate rng ~budget:(Vol.Practical budget) (P.unit_cube d))
        in
        let grid_cols =
          match grid_result with
          | Some (v, cells, t) -> [ Util.fmt_f ~digits:3 v; string_of_int cells; Util.fmt_f ~digits:3 t ]
          | None -> [ "-"; Printf.sprintf "%d (skip)" grid_cells; "-" ]
        in
        let walk_cols =
          match walk_result with
          | Some r -> [ Util.fmt_f ~digits:3 r.Vol.volume; Util.fmt_f ~digits:3 walk_time ]
          | None -> [ "fail"; "-" ]
        in
        (string_of_int d :: grid_cols) @ walk_cols)
      dims
  in
  Util.table
    [
      ("dim", 4);
      ("grid vol", 9);
      ("grid cells", 14);
      ("grid time(s)", 12);
      ("walk vol", 9);
      ("walk time(s)", 12);
    ]
    rows;
  Printf.printf
    "Expectation: grid cell count grows as (1/γ)^d = 10^d, so grid time grows\n\
     tenfold per dimension while the walk grows polynomially; extrapolating the\n\
     last rows puts the crossover near d=7 at γ=0.1 (and earlier for finer γ).\n"
