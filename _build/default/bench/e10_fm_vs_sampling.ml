(* E10 — Proposition 4.3: symbolic projection vs sampling reconstruction.

   Fourier–Motzkin elimination squares the constraint count at every
   eliminated variable (O(2^{2^k}) worst case); Algorithm 3 instead
   samples the projection with the compensated generator and takes a
   hull in the low output dimension, in poly(d+e) plus O(2^{e/2}) for
   the hull step.  We project random bounded polytopes in dimension
   2+k down to the plane and measure both costs. *)

module FM = Scdb_qe.Fourier_motzkin
module P = Scdb_polytope.Polytope
module Rng = Scdb_rng.Rng

let q = Rational.of_int

(* Random bounded tuple in dimension d: the cube [-2,2]^d plus extra
   random halfplanes through the outside of the unit ball. *)
let random_tuple rng d extra =
  let cube = List.concat (Relation.tuples (Relation.cube d (q 2))) in
  let halfplanes =
    List.init extra (fun _ ->
        let te =
          Term.make
            (List.init d (fun i -> (i, q (Rng.int rng 9 - 4))))
            (q (-2 - Rng.int rng 4))
        in
        Atom.make te Atom.Le)
  in
  halfplanes @ cube

let run ~fast =
  Util.header "E10: Fourier-Motzkin blowup vs Algorithm 3 sampling (Prop 4.3)";
  let rng = Util.fresh_rng () in
  let e = 2 in
  let ks = if fast then [ 1; 2; 3 ] else [ 1; 2; 3; 4 ] in
  let n_hull = if fast then 30 else 60 in
  let rows =
    List.map
      (fun k ->
        let d = e + k in
        let tuple = random_tuple rng d (2 * d) in
        let eliminated = List.init k (fun i -> e + i) in
        (* unpruned FM: the raw doubly-exponential construction *)
        let unpruned =
          if k <= 3 then begin
            let (_, stats), t =
              Util.time_it (fun () -> FM.eliminate_vars_tuple_stats ~prune:false eliminated tuple)
            in
            Printf.sprintf "%d cstr / %.3fs" stats.FM.constraints_generated t
          end
          else "skipped (blowup)"
        in
        (* pruned FM: the practical symbolic baseline *)
        let (_, pruned_stats), pruned_t =
          Util.time_it (fun () -> FM.eliminate_vars_tuple_stats ~prune:true eliminated tuple)
        in
        (* Algorithm 3: compensated projection generator + hull *)
        let sampling_t =
          let poly = P.of_tuple ~dim:d tuple in
          let fiber_volume = if k <= 3 then Project.Exact else Project.Estimated 200 in
          let _, t =
            Util.time_it (fun () ->
                match Project.project ~fiber_volume rng poly ~keep:[ 0; 1 ] with
                | Some obs -> Some (Reconstruct.convex_hull_estimate rng obs ~n:n_hull)
                | None -> None)
          in
          t
        in
        [
          string_of_int k;
          unpruned;
          Printf.sprintf "%d cstr / %.3fs" pruned_stats.FM.constraints_generated pruned_t;
          Util.fmt_f ~digits:3 sampling_t;
        ])
      ks
  in
  Util.table
    [
      ("k eliminated", 12);
      ("FM unpruned", 22);
      ("FM + LP pruning", 22);
      ("Algorithm 3 time(s)", 19);
    ]
    rows;
  Printf.printf
    "Expectation: unpruned FM constraint counts grow doubly exponentially in k\n\
     (unusable by k=4); sampling reconstruction grows mildly with k — the\n\
     asymptotic speed-up of Proposition 4.3.\n"
