(* E4 — the (ε,δ)-volume estimator of the DFK theorem.

   Relative error of the multi-phase estimator against exact ground
   truth, as a function of the requested ε (rigorous Chernoff budgets)
   and of a fixed per-phase sample budget.  Measured error should stay
   below the requested ε (with margin, since Chernoff is conservative). *)

module P = Scdb_polytope.Polytope
module Vol = Scdb_sampling.Volume
module Rng = Scdb_rng.Rng

let bodies =
  [
    ("cube2", P.unit_cube 2, 1.0);
    ("simplex2", P.simplex 2, 0.5);
    ("simplex3", P.simplex 3, 1.0 /. 6.0);
    ("elongated2", P.box [| 0.0; 0.0 |] [| 50.0; 0.1 |], 5.0);
  ]

let run ~fast =
  Util.header "E4: volume estimator accuracy vs requested epsilon (DFK theorem)";
  let rng = Util.fresh_rng () in
  let trials = if fast then 2 else 3 in
  Util.subheader "rigorous Chernoff budget";
  let eps_list = if fast then [ 0.5; 0.3 ] else [ 0.5; 0.3; 0.2 ] in
  (* the rigorous budget explodes for high phase counts: keep the 3-D
     body in the practical section and run the certified budgets on the
     low-phase bodies *)
  let rigorous_bodies =
    if fast then [ List.nth bodies 0; List.nth bodies 1 ]
    else [ List.nth bodies 0; List.nth bodies 1; List.nth bodies 3 ]
  in
  let rows =
    List.concat_map
      (fun (name, poly, truth) ->
        List.map
          (fun eps ->
            let errs =
              List.init trials (fun _ ->
                  match Vol.estimate rng ~eps ~delta:0.25 ~budget:Vol.Rigorous poly with
                  | Some r -> Util.rel_err ~truth r.Vol.volume
                  | None -> Float.infinity)
            in
            let worst = List.fold_left Float.max 0.0 errs in
            [
              name;
              Util.fmt_f ~digits:2 eps;
              Util.fmt_f (Util.mean errs);
              Util.fmt_f worst;
              (if worst <= eps then "yes" else "NO");
            ])
          eps_list)
      rigorous_bodies
  in
  Util.table
    [ ("body", 12); ("eps", 5); ("mean rel err", 12); ("worst rel err", 13); ("within eps", 10) ]
    rows;
  Util.subheader "fixed per-phase budget (practical mode)";
  let budgets = if fast then [ 200; 1000 ] else [ 200; 1000; 5000 ] in
  let rows =
    List.concat_map
      (fun (name, poly, truth) ->
        List.map
          (fun b ->
            let errs =
              List.init trials (fun _ ->
                  match Vol.estimate rng ~budget:(Vol.Practical b) poly with
                  | Some r -> Util.rel_err ~truth r.Vol.volume
                  | None -> Float.infinity)
            in
            [ name; string_of_int b; Util.fmt_f (Util.mean errs) ])
          budgets)
      bodies
  in
  Util.table [ ("body", 12); ("samples/phase", 13); ("mean rel err", 12) ] rows;
  Printf.printf "Expectation: error decreases with budget and stays under the requested eps.\n"
