(* E11 — §4.1.3: the geometric SAT encoding.

   A CNF instance becomes an intersection of clause regions (unions of
   slabs); the instance is satisfiable iff the intersection has positive
   volume.  We confirm the encoding against brute force, show how the
   intersection volume decays with the clause count (crossing the
   poly-related boundary), and run the paper's own machinery — Inter of
   Unions of convex observables — on small instances. *)

module Rng = Scdb_rng.Rng

let run ~fast =
  Util.header "E11: SAT as intersection volume (sec 4.1.3)";
  let rng = Util.fresh_rng () in
  let nvars = 6 in
  Util.subheader (Printf.sprintf "random 3-CNF over %d variables: volume vs clause count" nvars);
  let clause_counts = if fast then [ 2; 6; 12 ] else [ 2; 4; 8; 12; 16; 24 ] in
  let rows =
    List.map
      (fun m ->
        let cnf = Sat_encode.random_3cnf rng ~nvars ~clauses:m in
        let vol = Sat_encode.exact_volume ~nvars cnf in
        let models = Sat_encode.count_models ~nvars cnf in
        [
          string_of_int m;
          string_of_int models;
          Rational.to_string vol;
          Util.fmt_e (Rational.to_float vol);
          (if Rational.sign vol > 0 then "sat" else "unsat");
        ])
      clause_counts
  in
  Util.table
    [ ("clauses", 8); ("#models", 8); ("exact volume", 22); ("float", 9); ("decision", 8) ]
    rows;
  Util.subheader "volume > 0 iff satisfiable (exhaustive check on small instances)";
  let agreement = ref 0 and total = if fast then 30 else 150 in
  for _ = 1 to total do
    let m = 2 + Rng.int rng 20 in
    let cnf = Sat_encode.random_3cnf rng ~nvars:5 ~clauses:m in
    let by_volume = Rational.sign (Sat_encode.exact_volume ~nvars:5 cnf) > 0 in
    let by_models = Sat_encode.is_satisfiable ~nvars:5 cnf in
    if by_volume = by_models then incr agreement
  done;
  Printf.printf "encoding agreement: %d/%d instances\n" !agreement total;
  Util.subheader "running the paper's algebra (Inter of Unions) on a tiny instance";
  let cnf = [ [ 1; 2; 3 ]; [ -1; 2 ]; [ -2; -3 ] ] in
  let truth = Rational.to_float (Sat_encode.exact_volume ~nvars:3 cnf) in
  let cfg = Convex_obs.practical_config in
  let clauses = Sat_encode.clause_observables ~config:cfg rng ~nvars:3 cnf in
  let inter = Inter.inter ~poly_degree:6 clauses in
  (match Observable.volume inter rng ~eps:0.3 ~delta:0.3 with
  | est ->
      Printf.printf "intersection volume: estimated %.4f, exact %.4f (rel err %.3f)\n" est truth
        (Util.rel_err ~truth est)
  | exception Observable.Estimation_failed m -> Printf.printf "estimation failed: %s\n" m);
  Printf.printf
    "Expectation: volume decays with clause count and hits 0 exactly at\n\
     unsatisfiability — so a general relative estimator would decide SAT,\n\
     which is why Prop 4.1's poly-related restriction is necessary.\n"
