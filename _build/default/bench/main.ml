(* Experiment harness: one experiment per table/figure-level claim of
   the paper (see DESIGN.md section 3 and EXPERIMENTS.md).

   Usage:
     dune exec bench/main.exe                 run all experiments
     dune exec bench/main.exe -- e4 e9        run selected experiments
     dune exec bench/main.exe -- perf         bechamel micro-benchmarks
     dune exec bench/main.exe -- --fast ...   shrunk sample counts *)

let experiments =
  [
    ("e1", "Fig.1/Thm 4.3: projection bias + Algorithm 2", E01_projection.run);
    ("e2", "DFK: lattice-walk mixing", E02_mixing.run);
    ("e3", "Intro: rejection sampling vs dimension", E03_rejection.run);
    ("e4", "DFK: volume estimator accuracy", E04_volume.run);
    ("e5", "Thm 4.1/4.2: union (Algorithm 1)", E05_union.run);
    ("e6", "Prop 4.1: intersection + poly-relatedness", E06_inter.run);
    ("e7", "Prop 4.2: difference", E07_diff.run);
    ("e8", "Thm 3.1: fixed-dimension grid vs walk", E08_fixed_dim.run);
    ("e9", "Lem 4.1: hull reconstruction rate", E09_reconstruct.run);
    ("e10", "Prop 4.3: Fourier-Motzkin vs Algorithm 3", E10_fm_vs_sampling.run);
    ("e11", "Sec 4.1.3: SAT encoding", E11_sat.run);
    ("e12", "Thm 4.4: GIS queries end-to-end", E12_gis.run);
    ("e13", "Def 2.2: parameter semantics", E13_params.run);
    ("e14", "Ablations + sec 5 polynomial extension", E14_ablation.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let fast = List.mem "--fast" args in
  let selected = List.filter (fun a -> a <> "--fast") args in
  let want_perf = List.mem "perf" selected in
  let selected = List.filter (fun a -> a <> "perf") selected in
  List.iter
    (fun name ->
      if not (List.mem_assoc name (List.map (fun (n, d, f) -> (n, (d, f))) experiments)) then begin
        Printf.eprintf "unknown experiment %S; known: %s, perf\n" name
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
        exit 2
      end)
    selected;
  let to_run =
    if selected = [] && not want_perf then experiments
    else List.filter (fun (n, _, _) -> List.mem n selected) experiments
  in
  Printf.printf "spatialdb experiment harness (%s mode)\n" (if fast then "fast" else "full");
  List.iter
    (fun (name, descr, f) ->
      Printf.printf "\n[%s] %s\n" name descr;
      let (), t = Util.time_it (fun () -> f ~fast) in
      Printf.printf "[%s] done in %.1fs\n" name t)
    to_run;
  if want_perf || selected = [] then Perf.run ~fast
