(* E2 — the Dyer–Frieze–Kannan theorem (§2).

   The lazy lattice walk on a γ-grid of a well-rounded convex body has
   the uniform distribution as its stationary law; rapid mixing is what
   makes convex relations observable.  We measure the total-variation
   distance between the empirical end-point distribution (cold start at
   a corner) and uniform, as the number of steps grows, in several
   dimensions. *)

module P = Scdb_polytope.Polytope
module G = Scdb_sampling.Grid
module W = Scdb_sampling.Walk
module Rng = Scdb_rng.Rng

let tv_at rng ~dim ~steps ~runs =
  (* unit cube with a grid of 4 cells per axis -> 4^dim vertices *)
  let cells = 4 in
  let grid = G.make ~step:(1.0 /. float_of_int (cells - 1)) ~dim in
  let cube = P.unit_cube dim in
  let mem x = P.mem ~slack:1e-9 cube x in
  let counts = Array.make (int_of_float (float_of_int cells ** float_of_int dim)) 0 in
  let index p =
    let k = ref 0 in
    for i = 0 to dim - 1 do
      let c = Stdlib.min (cells - 1) (Stdlib.max 0 (int_of_float (Float.round (p.(i) *. float_of_int (cells - 1))))) in
      k := (!k * cells) + c
    done;
    !k
  in
  for _ = 1 to runs do
    let p = W.sample rng ~grid ~mem ~start:(Vec.create dim) ~steps in
    counts.(index p) <- counts.(index p) + 1
  done;
  Util.tv_from_uniform counts

let run ~fast =
  Util.header "E2: lattice-walk mixing on a convex body (DFK theorem)";
  let rng = Util.fresh_rng () in
  let runs = if fast then 1500 else 8000 in
  let step_list = if fast then [ 4; 16; 64; 256 ] else [ 4; 16; 64; 256; 1024; 4096 ] in
  let dims = [ 1; 2; 3 ] in
  let rows =
    List.map
      (fun steps ->
        string_of_int steps
        :: List.map (fun dim -> Util.fmt_f (tv_at rng ~dim ~steps ~runs)) dims)
      step_list
  in
  Util.table
    (("steps", 7) :: List.map (fun d -> (Printf.sprintf "TV d=%d" d, 9)) dims)
    rows;
  Printf.printf
    "Expectation: TV decays towards the sampling noise floor (~sqrt(bins/runs));\n\
     more steps are needed as the dimension grows (polynomially, per the paper).\n"
