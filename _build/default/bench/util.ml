(* Shared helpers for the experiment harness: fixed-width tables,
   timing, and statistics. *)

let rng_seed = 20060101 (* JCSS publication year-ish; fixed for reproducibility *)

let fresh_rng () = Scdb_rng.Rng.create rng_seed

let header title =
  Printf.printf "\n=== %s ===\n" title

let subheader s = Printf.printf "--- %s ---\n" s

(* Print a table: column names with widths, then rows of cells. *)
let table columns rows =
  let line = String.concat "  " (List.map (fun (name, width) -> Printf.sprintf "%-*s" width name) columns) in
  print_endline line;
  print_endline (String.make (String.length line) '-');
  List.iter
    (fun row ->
      print_endline
        (String.concat "  "
           (List.map2 (fun (_, width) cell -> Printf.sprintf "%-*s" width cell) columns row)))
    rows;
  flush stdout

let time_it f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let fmt_f ?(digits = 4) x = Printf.sprintf "%.*f" digits x
let fmt_e x = Printf.sprintf "%.2e" x

(* Total-variation distance between an empirical histogram and the
   uniform distribution over its bins. *)
let tv_from_uniform counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 1.0
  else begin
    let k = Array.length counts in
    let u = 1.0 /. float_of_int k in
    let sum =
      Array.fold_left
        (fun acc c -> acc +. Float.abs ((float_of_int c /. float_of_int total) -. u))
        0.0 counts
    in
    sum /. 2.0
  end

let chi_square counts =
  let total = Array.fold_left ( + ) 0 counts in
  let k = Array.length counts in
  let e = float_of_int total /. float_of_int k in
  Array.fold_left (fun acc c -> acc +. (((float_of_int c -. e) ** 2.0) /. e)) 0.0 counts

let rel_err ~truth x = Float.abs (x -. truth) /. Float.abs truth
