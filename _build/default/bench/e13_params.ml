(* E13 — Definition 2.2 parameter semantics.

   (a) Distribution quality: the generator's empirical bin-probability
   ratio must approach 1 as requested ε shrinks (more walk steps).
   (b) Failure probability: the union generator's retry budget
   k = ⌈m·ln(1/δ)⌉ must push the measured failure rate below δ even
   when each trial succeeds with probability only 1/m. *)

module P = Scdb_polytope.Polytope
module G = Scdb_sampling.Grid
module W = Scdb_sampling.Walk
module Rng = Scdb_rng.Rng

let run ~fast =
  Util.header "E13: generator parameters (gamma, eps, delta) do what Def 2.2 says";
  let rng = Util.fresh_rng () in
  Util.subheader "(a) distribution ratio vs requested eps (segment, 8-vertex grid)";
  let runs = if fast then 3000 else 12_000 in
  let eps_list = [ 0.5; 0.2; 0.1 ] in
  let rows =
    List.map
      (fun eps ->
        let grid = G.make ~step:(1.0 /. 7.0) ~dim:1 in
        let mem x = x.(0) >= -0.01 && x.(0) <= 1.01 in
        (* 1-D mixing time on an 8-vertex path is Θ(L²·ln(1/ε)); use that
           scaling explicitly so the ε-dependence is visible (the general
           default clamps to a constant in dimension 1). *)
        let steps = Stdlib.max 8 (int_of_float (96.0 *. log (1.0 /. eps))) in
        let counts = Array.make 8 0 in
        for _ = 1 to runs do
          let p = W.sample rng ~grid ~mem ~start:[| 0.0 |] ~steps in
          let k = Stdlib.min 7 (Stdlib.max 0 (int_of_float (Float.round (p.(0) *. 7.0)))) in
          counts.(k) <- counts.(k) + 1
        done;
        let mx = Array.fold_left Stdlib.max 0 counts and mn = Array.fold_left Stdlib.min max_int counts in
        let ratio = float_of_int mx /. float_of_int (Stdlib.max 1 mn) in
        [
          Util.fmt_f ~digits:2 eps;
          string_of_int steps;
          Util.fmt_f ~digits:3 ratio;
          Util.fmt_f ~digits:3 ((1.0 +. eps) ** 2.0);
        ])
      eps_list
  in
  Util.table
    [ ("eps", 5); ("walk steps", 10); ("max/min bin ratio", 17); ("(1+eps)^2 target", 16) ]
    rows;
  Util.subheader "(b) union-generator failure rate vs requested delta";
  (* m fully-overlapping copies: a trial accepts only when the sampled
     index equals j(x)=0, so per-trial success probability is 1/m. *)
  let cfg = Convex_obs.practical_config in
  let m = 4 in
  let copies =
    List.init m (fun _ -> Option.get (Convex_obs.make ~config:cfg rng (Relation.unit_cube 2)))
  in
  let u = Union.union copies in
  let trials = if fast then 200 else 1000 in
  let rows =
    List.map
      (fun delta ->
        let params = Params.make ~gamma:0.1 ~eps:0.3 ~delta () in
        let failures = ref 0 in
        for _ = 1 to trials do
          if Option.is_none (Observable.sample u rng params) then incr failures
        done;
        let measured = float_of_int !failures /. float_of_int trials in
        [
          Util.fmt_f ~digits:2 delta;
          string_of_int (Union.trials_for ~m ~delta);
          Util.fmt_f ~digits:4 measured;
          (if measured <= delta then "yes" else "NO");
        ])
      [ 0.5; 0.2; 0.1; 0.05 ]
  in
  Util.table
    [ ("delta", 6); ("retry budget", 12); ("measured failure", 16); ("<= delta", 8) ]
    rows;
  Printf.printf
    "Expectation: (a) the bin ratio tightens towards 1 within the (1+eps)^2\n\
     envelope as eps shrinks; (b) measured failure rate stays below delta.\n"
