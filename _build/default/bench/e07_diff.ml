(* E7 — Proposition 4.2: difference of observables.

   S1 − S2 is neither connected nor convex in general, yet observable
   when poly-related to S1.  We carve a growing hole out of a box and
   compare the estimator against exact ground truth, also checking that
   both components of the disconnected difference receive samples. *)

module VE = Scdb_polytope.Volume_exact
module Rng = Scdb_rng.Rng

let q = Rational.of_float

let run ~fast =
  Util.header "E7: difference of observables (Prop 4.2)";
  let rng = Util.fresh_rng () in
  let cfg = Convex_obs.practical_config in
  let params = Params.make ~gamma:0.05 ~eps:0.15 ~delta:0.1 () in
  let samples = if fast then 300 else 1500 in
  let holes = if fast then [ 0.2; 0.6 ] else [ 0.1; 0.3; 0.6; 0.9 ] in
  let rows =
    List.map
      (fun h ->
        (* [0,2]x[0,1] minus the centred hole [1-h/2, 1+h/2] x [0,1] *)
        let a = Relation.box [| q 0.0; q 0.0 |] [| q 2.0; q 1.0 |] in
        let b = Relation.box [| q (1.0 -. (h /. 2.0)); q 0.0 |] [| q (1.0 +. (h /. 2.0)); q 1.0 |] in
        let truth = VE.float_volume_relation (Relation.diff a b) in
        let oa = Option.get (Convex_obs.make ~config:cfg rng a) in
        let ob = Option.get (Convex_obs.make ~config:cfg rng b) in
        let d = Diff.diff oa ob in
        let est = Observable.volume d rng ~eps:0.2 ~delta:0.2 in
        let left = ref 0 and right = ref 0 in
        for _ = 1 to samples do
          let x = Observable.sample_exn d rng params in
          if x.(0) < 1.0 then incr left else incr right
        done;
        [
          Util.fmt_f ~digits:2 h;
          Util.fmt_f ~digits:3 truth;
          Util.fmt_f ~digits:3 est;
          Util.fmt_f (Util.rel_err ~truth est);
          Printf.sprintf "%d/%d" !left !right;
        ])
      holes
  in
  Util.table
    [ ("hole width", 10); ("exact vol", 10); ("estimated", 10); ("rel err", 8); ("left/right", 10) ]
    rows;
  Printf.printf
    "Expectation: small relative error at every hole size, with samples split\n\
     evenly between the two components of the disconnected difference.\n"
