(* E6 — Proposition 4.1 / Corollary 4.3.

   Intersection by rejection from the smallest operand works exactly when
   the intersection is poly-related to it.  We shrink the overlap width w
   of two unit boxes: the estimator stays accurate while w is moderate and
   the generator starts failing (reporting None, as specified) once the
   intersection leaves the poly-related regime for the promised degree. *)

module VE = Scdb_polytope.Volume_exact
module Rng = Scdb_rng.Rng

let q = Rational.of_float

let run ~fast =
  Util.header "E6: intersection and the poly-relatedness condition (Prop 4.1)";
  let rng = Util.fresh_rng () in
  let cfg = Convex_obs.practical_config in
  let params = Params.make ~gamma:0.05 ~eps:0.15 ~delta:0.1 () in
  let widths = if fast then [ 0.5; 0.1; 0.01 ] else [ 0.5; 0.2; 0.1; 0.01; 0.001 ] in
  let attempts = if fast then 20 else 60 in
  let rows =
    List.map
      (fun w ->
        (* [0, 1] x [0,1]  ∩  [1-w, 2-w] x [0,1]: overlap w x 1 *)
        let a = Relation.box [| q 0.0; q 0.0 |] [| q 1.0; q 1.0 |] in
        let b = Relation.box [| q (1.0 -. w); q 0.0 |] [| q (2.0 -. w); q 1.0 |] in
        let truth = VE.float_volume_relation (Relation.inter a b) in
        let oa = Option.get (Convex_obs.make ~config:cfg rng a) in
        let ob = Option.get (Convex_obs.make ~config:cfg rng b) in
        let it = Inter.inter ~poly_degree:2 [ oa; ob ] in
        let success = ref 0 in
        for _ = 1 to attempts do
          if Option.is_some (Observable.sample it rng params) then incr success
        done;
        let est =
          if !success > 0 then
            match Observable.volume it rng ~eps:0.25 ~delta:0.25 with
            | v -> Util.fmt_f ~digits:4 v
            | exception Observable.Estimation_failed _ -> "failed"
          else "n/a"
        in
        [
          Util.fmt_f ~digits:3 w;
          Util.fmt_f ~digits:4 truth;
          est;
          Printf.sprintf "%d/%d" !success attempts;
        ])
      widths
  in
  Util.table
    [ ("overlap w", 10); ("exact vol", 10); ("estimated", 10); ("gen success", 12) ]
    rows;
  Printf.printf
    "Expectation: accurate while w is poly-related to the operands (w >= ~d^-k);\n\
     for tiny w the generator's budget is exhausted and it fails explicitly —\n\
     the necessity side is the SAT encoding of E11.\n"
