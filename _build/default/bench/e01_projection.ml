(* E1 — Fig. 1 / Theorem 4.3 (Algorithm 2).

   Project the triangle {x >= 0, y >= 0, x + y <= 1} onto x.  The naive
   "sample S, drop y" generator is biased towards small x (the fibers
   there are longer); Algorithm 2's fiber-volume compensation restores
   uniformity on [0,1].  We regenerate the figure as a cylinder-occupancy
   histogram plus total-variation distances. *)

module P = Scdb_polytope.Polytope
module Rng = Scdb_rng.Rng

let run ~fast =
  Util.header "E1: projection bias and Algorithm 2 compensation (Fig. 1, Thm 4.3)";
  let rng = Util.fresh_rng () in
  let n = if fast then 500 else 4000 in
  let bins = 8 in
  let tri = P.simplex 2 in
  let params = Params.make ~gamma:0.05 ~eps:0.15 ~delta:0.1 () in
  let cfg = Convex_obs.practical_config in
  let source = Option.get (Convex_obs.of_polytope ~config:cfg rng tri) in
  let compensated = Option.get (Project.project rng tri ~keep:[ 0 ]) in
  let hist_naive = Array.make bins 0 and hist_comp = Array.make bins 0 in
  let bin x = Stdlib.min (bins - 1) (int_of_float (x *. float_of_int bins)) in
  for _ = 1 to n do
    (match Project.naive_projection_sample rng source ~keep:[ 0 ] params with
    | Some y -> hist_naive.(bin y.(0)) <- hist_naive.(bin y.(0)) + 1
    | None -> ());
    let y = Observable.sample_exn compensated rng params in
    hist_comp.(bin y.(0)) <- hist_comp.(bin y.(0)) + 1
  done;
  let row i =
    [
      Printf.sprintf "[%.3f,%.3f)" (float_of_int i /. float_of_int bins) (float_of_int (i + 1) /. float_of_int bins);
      string_of_int hist_naive.(i);
      string_of_int hist_comp.(i);
      string_of_int (n / bins);
    ]
  in
  Util.table
    [ ("cylinder", 14); ("naive", 8); ("algorithm2", 10); ("uniform", 8) ]
    (List.init bins row);
  Printf.printf "TV(naive, uniform)      = %.4f   (paper: biased, Fig. 1)\n" (Util.tv_from_uniform hist_naive);
  Printf.printf "TV(algorithm2, uniform) = %.4f   (paper: almost uniform)\n" (Util.tv_from_uniform hist_comp);
  let vol = Observable.volume compensated rng ~eps:0.2 ~delta:0.2 in
  Printf.printf "projection volume estimate = %.4f   (truth 1.0)\n" vol
