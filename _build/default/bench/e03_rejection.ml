(* E3 — the introduction's 1/d^Θ(d) argument.

   Sampling a round body by rejection from its bounding cube needs
   exponentially many trials as the dimension grows: for the L1 ball
   (cross-polytope) of radius 1 inside [-1,1]^d the acceptance rate is
   exactly 1/d!.  The walk sampler's cost per sample is polynomial.
   This is the paper's motivation for the DFK machinery. *)

module P = Scdb_polytope.Polytope
module Rej = Scdb_sampling.Rejection
module HR = Scdb_sampling.Hit_and_run
module Rng = Scdb_rng.Rng

let factorial d = List.fold_left ( *. ) 1.0 (List.init d (fun i -> float_of_int (i + 1)))

let run ~fast =
  Util.header "E3: rejection sampling collapses with dimension (intro, 1/d^d)";
  let rng = Util.fresh_rng () in
  let budget = if fast then 40_000 else 400_000 in
  let dims = if fast then [ 2; 3; 4; 5; 6 ] else [ 2; 3; 4; 5; 6; 7; 8 ] in
  let rows =
    List.map
      (fun d ->
        let cross = P.cross_polytope d 1.0 in
        let mem x = P.mem ~slack:1e-12 cross x in
        let lo = Array.make d (-1.0) and hi = Array.make d 1.0 in
        let _, stats = Rej.sample_many rng ~lo ~hi ~mem ~count:budget ~max_attempts:budget in
        let rate = Rej.acceptance_rate stats in
        let predicted = 1.0 /. factorial d in
        (* walk cost: steps per sample x (2^d facet tests) is the honest
           membership cost; report the number of chord steps, which is
           the polynomial part the paper argues about *)
        let walk_steps = HR.default_steps ~dim:d in
        let samples_per_accept = if rate > 0.0 then 1.0 /. rate else Float.infinity in
        [
          string_of_int d;
          Util.fmt_e rate;
          Util.fmt_e predicted;
          (if Float.is_finite samples_per_accept then Printf.sprintf "%.0f" samples_per_accept else ">budget");
          string_of_int walk_steps;
        ])
      dims
  in
  Util.table
    [
      ("dim", 4);
      ("measured rate", 14);
      ("1/d! predicted", 14);
      ("trials/sample", 14);
      ("walk steps/sample", 18);
    ]
    rows;
  Printf.printf
    "Expectation: trials/sample grows like d! (super-exponential) while the\n\
     walk's per-sample step count grows polynomially — the paper's motivation.\n"
