(* E14 — ablations of the pipeline's design choices (DESIGN.md §6),
   plus the §5 extension to polynomial constraints via membership
   oracles.

   (a) Well-rounding: without the isotropic whitening step the phase
       count explodes on elongated bodies and accuracy collapses — the
       paper's reason for assuming well-rounded position.
   (b) Walk length: error vs mixing steps (under-mixed walks are biased
       towards the start).
   (c) Sampler choice: the paper's lattice walk vs continuous
       hit-and-run (same stationary law; different constants).
   (d) §5: an ellipsoid (convex FO+POLY body) handled purely through
       its membership oracle. *)

module P = Scdb_polytope.Polytope
module Vol = Scdb_sampling.Volume
module OB = Scdb_sampling.Oracle_body
module Rng = Scdb_rng.Rng

let run ~fast =
  Util.header "E14: ablations + sec 5 polynomial-constraint extension";
  let rng = Util.fresh_rng () in
  let budget = if fast then 800 else 3000 in

  Util.subheader "(a) rounding rounds on an elongated box (truth 5.0)";
  let elongated = P.box [| 0.0; 0.0 |] [| 50.0; 0.1 |] in
  let rows =
    List.map
      (fun rounds ->
        match Vol.estimate rng ~budget:(Vol.Practical budget) ~rounding_rounds:rounds elongated with
        | Some r ->
            [
              string_of_int rounds;
              Util.fmt_f ~digits:3 r.Vol.volume;
              Util.fmt_f (Util.rel_err ~truth:5.0 r.Vol.volume);
              string_of_int r.Vol.phases;
              Util.fmt_f ~digits:1 r.Vol.rounding_ratio;
            ]
        | None -> [ string_of_int rounds; "fail"; "-"; "-"; "-" ])
      [ 0; 1; 2 ]
  in
  Util.table
    [ ("rounds", 7); ("estimate", 9); ("rel err", 8); ("phases", 7); ("aspect", 7) ]
    rows;

  Util.subheader "(b) walk length vs accuracy (cube4, truth 1.0)";
  let rows =
    List.map
      (fun steps ->
        match Vol.estimate rng ~budget:(Vol.Practical budget) ~walk_steps:steps (P.unit_cube 4) with
        | Some r -> [ string_of_int steps; Util.fmt_f ~digits:3 r.Vol.volume; Util.fmt_f (Util.rel_err ~truth:1.0 r.Vol.volume) ]
        | None -> [ string_of_int steps; "fail"; "-" ])
      [ 2; 8; 30; 120 ]
  in
  Util.table [ ("steps", 6); ("estimate", 9); ("rel err", 8) ] rows;

  Util.subheader "(c) lattice walk vs hit-and-run (simplex3, truth 1/6)";
  let truth = 1.0 /. 6.0 in
  let rows =
    List.map
      (fun (name, sampler) ->
        let (result, t) =
          Util.time_it (fun () ->
              Vol.estimate rng ~sampler ~budget:(Vol.Practical budget) (P.simplex 3))
        in
        match result with
        | Some r ->
            [ name; Util.fmt_f ~digits:4 r.Vol.volume; Util.fmt_f (Util.rel_err ~truth r.Vol.volume); Util.fmt_f ~digits:2 t ]
        | None -> [ name; "fail"; "-"; "-" ])
      [ ("grid walk (paper)", Vol.Grid_walk); ("hit-and-run", Vol.Hit_and_run) ]
  in
  Util.table [ ("sampler", 18); ("estimate", 9); ("rel err", 8); ("time(s)", 8) ] rows;

  Util.subheader "(c') mixing diagnostics: effective sample size per 1000 steps (cube3)";
  let module Mix = Scdb_sampling.Mixing in
  let module BW = Scdb_sampling.Ball_walk in
  let module HR = Scdb_sampling.Hit_and_run in
  let module G = Scdb_sampling.Grid in
  let module W = Scdb_sampling.Walk in
  let cube = P.unit_cube 3 in
  let steps = if fast then 4000 else 20_000 in
  let f x = x.(0) in
  let samplers =
    [
      ( "lattice walk",
        fun rng x -> W.sample rng ~grid:(G.make ~step:0.1 ~dim:3) ~mem:(fun p -> P.mem cube p) ~start:x ~steps:1 );
      ("ball walk", fun rng x -> BW.sample_polytope rng cube ~start:x ~steps:1 ());
      ("hit-and-run", fun rng x -> HR.sample_polytope rng cube ~start:x ~steps:1);
    ]
  in
  let rows =
    List.map
      (fun (name, next) ->
        let series = Mix.trace rng ~steps ~thin:1 ~init:(Array.make 3 0.5) ~next ~f in
        let tau = Mix.integrated_autocorrelation_time series in
        let ess = Mix.effective_sample_size series /. float_of_int steps *. 1000.0 in
        [ name; Util.fmt_f ~digits:1 tau; Util.fmt_f ~digits:1 ess ])
      samplers
  in
  Util.table [ ("sampler", 14); ("tau (steps)", 11); ("ESS/1000 steps", 14) ] rows;

  Util.subheader "(d) sec 5: ellipsoid x'Ax <= 1 via membership oracle only";
  let cases =
    [
      ("disc", Mat.identity 2, Vol.ball_volume ~dim:2 ~radius:1.0);
      ("ellipse 1:4", [| [| 1.0; 0.0 |]; [| 0.0; 16.0 |] |], Vol.ball_volume ~dim:2 ~radius:1.0 /. 4.0);
      ("ball3", Mat.identity 3, Vol.ball_volume ~dim:3 ~radius:1.0);
      ( "tilted",
        [| [| 2.0; 0.5 |]; [| 0.5; 1.0 |] |],
        Vol.ball_volume ~dim:2 ~radius:1.0 /. sqrt ((2.0 *. 1.0) -. 0.25) );
    ]
  in
  let rows =
    List.map
      (fun (name, a, truth) ->
        match OB.ellipsoid a with
        | None -> [ name; "not PD"; "-"; "-" ]
        | Some body ->
            let est = OB.estimate_volume rng ~samples_per_phase:(if fast then 800 else 2500) body in
            [ name; Util.fmt_f ~digits:4 truth; Util.fmt_f ~digits:4 est; Util.fmt_f (Util.rel_err ~truth est) ])
      cases
  in
  Util.table [ ("body", 12); ("closed form", 11); ("estimate", 9); ("rel err", 8) ] rows;
  Printf.printf
    "Expectation: (a) rounding is what keeps elongated bodies accurate;\n\
     (b) under-mixed walks are badly biased; (c) both samplers agree, the\n\
     paper's lattice walk pays a constant-factor cost; (d) the machinery\n\
     runs unchanged on convex polynomial bodies (sec 5's conclusion).\n"
