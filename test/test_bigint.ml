(* Unit and property tests for arbitrary-precision integers. *)

module B = Bigint

let check_str msg expected actual = Alcotest.(check string) msg expected actual

(* Generator: random decimal string of up to [digits] digits. *)
let arbitrary_bigint digits =
  let gen =
    QCheck.Gen.(
      let* len = 1 -- digits in
      let* sign = bool in
      let* first = 1 -- 9 in
      let* rest = list_size (pure (len - 1)) (0 -- 9) in
      let s = String.concat "" (List.map string_of_int (first :: rest)) in
      pure (B.of_string (if sign then "-" ^ s else s)))
  in
  QCheck.make ~print:B.to_string gen

let big = arbitrary_bigint 40
let pair = QCheck.pair big big

let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let unit_tests =
  [
    t "zero" (fun () -> check_str "0" "0" (B.to_string B.zero));
    t "of_int round trip" (fun () ->
        List.iter
          (fun i -> Alcotest.(check int) "round" i (B.to_int (B.of_int i)))
          [ 0; 1; -1; 42; -12345; max_int / 2; -(max_int / 2) ]);
    t "min_int" (fun () ->
        Alcotest.(check string) "min_int" (string_of_int min_int) (B.to_string (B.of_int min_int)));
    t "of_string normalizes leading zeros" (fun () ->
        check_str "7" "7" (B.to_string (B.of_string "0007"));
        check_str "-7" "-7" (B.to_string (B.of_string "-0007"));
        check_str "0" "0" (B.to_string (B.of_string "000")));
    t "of_string rejects garbage" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty") (fun () ->
            ignore (B.of_string ""));
        (try
           ignore (B.of_string "12a3");
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    t "pow" (fun () ->
        check_str "2^100" "1267650600228229401496703205376" (B.to_string (B.pow B.two 100));
        check_str "x^0" "1" (B.to_string (B.pow (B.of_int 999) 0)));
    t "pow negative exponent" (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
            ignore (B.pow B.two (-1))));
    t "factorial 30" (fun () ->
        let rec fact n = if n = 0 then B.one else B.mul (B.of_int n) (fact (n - 1)) in
        check_str "30!" "265252859812191058636308480000000" (B.to_string (fact 30)));
    t "division by zero" (fun () ->
        Alcotest.check_raises "div0" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero)));
    t "shifts" (fun () ->
        check_str "1<<70" (B.to_string (B.pow B.two 70)) (B.to_string (B.shift_left B.one 70));
        check_str "back" "1" (B.to_string (B.shift_right (B.shift_left B.one 70) 70)));
    t "num_bits" (fun () ->
        Alcotest.(check int) "bits of 0" 0 (B.num_bits B.zero);
        Alcotest.(check int) "bits of 1" 1 (B.num_bits B.one);
        Alcotest.(check int) "bits of 2^70" 71 (B.num_bits (B.pow B.two 70)));
    t "to_int overflow detected" (fun () ->
        Alcotest.(check (option int)) "none" None (B.to_int_opt (B.pow B.two 100)));
    t "gcd and lcm" (fun () ->
        check_str "gcd" "6" (B.to_string (B.gcd (B.of_int 54) (B.of_int (-24))));
        check_str "lcm" "216" (B.to_string (B.lcm (B.of_int 54) (B.of_int 24)));
        check_str "gcd00" "0" (B.to_string (B.gcd B.zero B.zero)));
    t "to_float" (fun () ->
        Alcotest.(check (float 1e-6)) "float" 1e30 (B.to_float (B.of_string "1000000000000000000000000000000")));
  ]

let property_tests =
  [
    qt "string round trip" big (fun a -> B.equal a (B.of_string (B.to_string a)));
    qt "add commutes" pair (fun (a, b) -> B.equal (B.add a b) (B.add b a));
    qt "add/sub inverse" pair (fun (a, b) -> B.equal a (B.sub (B.add a b) b));
    qt "mul commutes" pair (fun (a, b) -> B.equal (B.mul a b) (B.mul b a));
    qt "mul distributes" (QCheck.triple big big big) (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    qt "divmod invariant" pair (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0);
    qt "ediv_rem non-negative remainder" pair (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.ediv_rem a b in
        B.equal a (B.add (B.mul q b) r) && B.sign r >= 0 && B.compare r (B.abs b) < 0);
    qt "gcd divides both" pair (fun (a, b) ->
        QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
        let g = B.gcd a b in
        B.is_zero (B.rem a g) && B.is_zero (B.rem b g));
    qt "compare total order vs sub sign" pair (fun (a, b) ->
        compare (B.compare a b) 0 = compare (B.sign (B.sub a b)) 0);
    qt "neg involutive" big (fun a -> B.equal a (B.neg (B.neg a)));
    qt "abs non-negative" big (fun a -> B.sign (B.abs a) >= 0);
    qt "karatsuba agrees with small mult" (QCheck.pair (arbitrary_bigint 120) (arbitrary_bigint 120))
      (fun (a, b) ->
        (* Cross-check big multiplication against the sum-of-shifts definition. *)
        let expected = B.mul a b in
        let via_string = B.of_string (B.to_string expected) in
        B.equal expected via_string && B.equal (B.div expected (if B.is_zero b then B.one else b)) (if B.is_zero b then B.zero else a));
    qt "shift_left is doubling" big (fun a -> B.equal (B.shift_left a 3) (B.mul a (B.of_int 8)));
    qt "succ/pred" big (fun a -> B.equal a (B.pred (B.succ a)));
  ]

(* The tagged small-int fast paths must be unobservable: every
   operation agrees with the pure limb implementation ([B.Reference]),
   and values are canonical ([Small] iff the magnitude fits a native
   int) so equality and hashing never depend on how a value was
   produced.  The generator concentrates operands around the ±2^62
   representation boundary, where the overflow checks live. *)
let boundary =
  let gen =
    QCheck.Gen.(
      let* v =
        frequency
          [
            (3, int);
            (2, map (fun k -> max_int - k) (0 -- 8));
            (2, map (fun k -> min_int + k) (0 -- 8));
            (1, map (fun k -> (max_int asr 1) + k - 4) (0 -- 8));
            (1, 0 -- 16);
          ]
      in
      let* shift = 0 -- 2 in
      pure (B.shift_left (B.of_int v) shift))
  in
  QCheck.make ~print:B.to_string gen

let boundary_pair = QCheck.pair boundary boundary

let fastpath_tests =
  [
    t "small/big boundary constants" (fun () ->
        let p62 = B.add (B.of_int max_int) B.one in
        check_str "2^62" "4611686018427387904" (B.to_string p62);
        Alcotest.(check bool) "2^62 overflows int" false (B.fits_int p62);
        Alcotest.(check bool) "max_int fits" true (B.fits_int (B.of_int max_int));
        Alcotest.(check bool) "min_int fits" true (B.fits_int (B.of_int min_int));
        Alcotest.(check int) "min_int to_int" min_int (B.to_int (B.of_int min_int));
        Alcotest.(check bool) "neg min_int = 2^62" true (B.equal p62 (B.neg (B.of_int min_int)));
        check_str "2^31 * 2^31" "4611686018427387904"
          (B.to_string (B.mul (B.shift_left B.one 31) (B.shift_left B.one 31))));
    t "hash consistent across construction routes" (fun () ->
        let big = B.pow B.two 200 in
        List.iter
          (fun v ->
            let direct = B.of_int v in
            let via_string = B.of_string (string_of_int v) in
            let via_big = B.sub (B.add (B.of_int v) big) big in
            Alcotest.(check bool) "equal str" true (B.equal direct via_string);
            Alcotest.(check bool) "equal big" true (B.equal direct via_big);
            Alcotest.(check int) "hash str" (B.hash direct) (B.hash via_string);
            Alcotest.(check int) "hash big" (B.hash direct) (B.hash via_big))
          [ 0; 1; -1; 12345; max_int; min_int; max_int - 1; min_int + 1 ]);
    qt "add agrees with limb reference" boundary_pair (fun (a, b) ->
        B.equal (B.add a b) (B.Reference.add a b));
    qt "sub agrees with limb reference" boundary_pair (fun (a, b) ->
        B.equal (B.sub a b) (B.Reference.sub a b));
    qt "mul agrees with limb reference" boundary_pair (fun (a, b) ->
        B.equal (B.mul a b) (B.Reference.mul a b));
    qt "divmod agrees with limb reference" boundary_pair (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        let q', r' = B.Reference.divmod a b in
        B.equal q q' && B.equal r r');
    qt "gcd agrees with limb reference" boundary_pair (fun (a, b) ->
        B.equal (B.gcd a b) (B.Reference.gcd a b));
    qt "boundary values are canonical" boundary_pair (fun (a, b) ->
        (* The same value computed on the fast path and through the limb
           code must hash identically (canonical representation). *)
        let s = B.add a b in
        let s' = B.Reference.add a b in
        B.hash s = B.hash s' && B.fits_int s = B.fits_int s');
  ]

let suites = [ ("bigint", unit_tests @ property_tests @ fastpath_tests) ]
