(* Tests for the float and exact simplex solvers. *)

module Lp = Scdb_lp.Lp
module Es = Scdb_lp.Exact_simplex
module Rng = Scdb_rng.Rng
module Q = Rational

let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 150) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let q = Q.of_int

let float_tests =
  [
    t "classic 2-var LP" (fun () ->
        let a = [| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |]; [| -1.; 0. |]; [| 0.; -1. |] |] in
        let b = [| 2.; 3.; 4.; 0.; 0. |] in
        match Lp.maximize ~a ~b ~c:[| 1.; 1. |] with
        | Lp.Optimal { value; point } ->
            Alcotest.(check (float 1e-7)) "value" 4.0 value;
            Alcotest.(check bool) "feasible" true (point.(0) <= 2.0 +. 1e-7 && point.(1) <= 3.0 +. 1e-7)
        | _ -> Alcotest.fail "expected optimal");
    t "infeasible detected" (fun () ->
        match Lp.maximize ~a:[| [| 1. |]; [| -1. |] |] ~b:[| -1.; -1. |] ~c:[| 1. |] with
        | Lp.Infeasible -> ()
        | _ -> Alcotest.fail "expected infeasible");
    t "unbounded detected" (fun () ->
        match Lp.maximize ~a:[| [| -1. |] |] ~b:[| 0. |] ~c:[| 1. |] with
        | Lp.Unbounded -> ()
        | _ -> Alcotest.fail "expected unbounded");
    t "degenerate vertices terminate (Bland)" (fun () ->
        (* Many constraints through one vertex: cycling hazard. *)
        let a = [| [| 1.; 1. |]; [| 1.; 2. |]; [| 2.; 1. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| -1.; 0. |]; [| 0.; -1. |] |] in
        let b = [| 0.; 0.; 0.; 1.; 1.; 0.; 0. |] in
        match Lp.maximize ~a ~b ~c:[| 1.; 1. |] with
        | Lp.Optimal { value; _ } -> Alcotest.(check (float 1e-9)) "value" 0.0 value
        | _ -> Alcotest.fail "expected optimal");
    t "minimize" (fun () ->
        let a = [| [| -1. |]; [| 1. |] |] and b = [| 2.; 5. |] in
        match Lp.minimize ~a ~b ~c:[| 1. |] with
        | Lp.Optimal { value; _ } -> Alcotest.(check (float 1e-7)) "min" (-2.0) value
        | _ -> Alcotest.fail "expected optimal");
    t "chebyshev of unit square" (fun () ->
        let a = [| [| 1.; 0. |]; [| -1.; 0. |]; [| 0.; 1. |]; [| 0.; -1. |] |] in
        let b = [| 1.; 0.; 1.; 0. |] in
        match Lp.chebyshev ~a ~b with
        | Some (c, r) ->
            Alcotest.(check (float 1e-7)) "radius" 0.5 r;
            Alcotest.(check bool) "centre" true (Vec.equal_eps 1e-7 [| 0.5; 0.5 |] c)
        | None -> Alcotest.fail "expected centre");
    t "chebyshev of empty is none" (fun () ->
        Alcotest.(check bool) "none" true
          (Option.is_none (Lp.chebyshev ~a:[| [| 1. |]; [| -1. |] |] ~b:[| -1.; -1. |])));
    t "in_hull basic" (fun () ->
        let pts = [| [| 0.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |] |] in
        Alcotest.(check bool) "inside" true (Lp.in_hull ~points:pts [| 0.25; 0.25 |]);
        Alcotest.(check bool) "vertex" true (Lp.in_hull ~points:pts [| 1.; 0. |]);
        Alcotest.(check bool) "outside" false (Lp.in_hull ~points:pts [| 0.6; 0.6 |]));
    qt "duplicated/degenerate rows never trip the cycling guard" (QCheck.make QCheck.Gen.(int_range 0 50_000)) ~count:80 (fun seed ->
        let rng = Rng.create seed in
        let d = 1 + Rng.int rng 3 in
        let base = Array.init (d + 2) (fun _ -> Array.init d (fun _ -> float_of_int (Rng.int rng 5 - 2))) in
        (* duplicate every row, and add a tight copy of the first *)
        let a = Array.append base base in
        let b = Array.init (Array.length a) (fun i -> float_of_int (Rng.int rng 4) +. if i mod 2 = 0 then 0.0 else 0.0) in
        let c = Array.init d (fun _ -> float_of_int (Rng.int rng 5 - 2)) in
        match Lp.maximize ~a ~b ~c with
        | Lp.Optimal _ | Lp.Infeasible | Lp.Unbounded -> true
        | exception Failure _ -> false);
    t "Beale's cycling example terminates with the right value" (fun () ->
        (* The classic LP on which Dantzig's rule cycles under naive
           tie-breaking; the degeneracy-streak fallback to Bland must
           terminate it at the known optimum 1/20. *)
        let a =
          [|
            [| 0.25; -60.0; -0.04; 9.0 |];
            [| 0.5; -90.0; -0.02; 3.0 |];
            [| 0.0; 0.0; 1.0; 0.0 |];
            [| -1.0; 0.0; 0.0; 0.0 |];
            [| 0.0; -1.0; 0.0; 0.0 |];
            [| 0.0; 0.0; -1.0; 0.0 |];
            [| 0.0; 0.0; 0.0; -1.0 |];
          |]
        in
        let b = [| 0.0; 0.0; 1.0; 0.0; 0.0; 0.0; 0.0 |] in
        let c = [| 0.75; -150.0; 0.02; -6.0 |] in
        match Lp.maximize ~a ~b ~c with
        | Lp.Optimal { value; _ } -> Alcotest.(check (float 1e-7)) "1/20" 0.05 value
        | _ -> Alcotest.fail "expected optimal");
    t "degenerate pivots are counted when telemetry is on" (fun () ->
        let module Tel = Scdb_telemetry.Telemetry in
        let was = Tel.enabled () in
        Tel.set_enabled true;
        let before = Option.value ~default:0 (Tel.counter_value "simplex.pivots") in
        let a = [| [| 1.; 1. |]; [| 1.; 2. |]; [| 2.; 1. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| -1.; 0. |]; [| 0.; -1. |] |] in
        let b = [| 0.; 0.; 0.; 1.; 1.; 0.; 0. |] in
        (match Lp.maximize ~a ~b ~c:[| 1.; 1. |] with
        | Lp.Optimal _ -> ()
        | _ -> Alcotest.fail "expected optimal");
        let after = Option.value ~default:0 (Tel.counter_value "simplex.pivots") in
        Tel.set_enabled was;
        Alcotest.(check bool) "pivot counter advanced" true (after > before));
    qt "box LP closed form" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        let rng = Rng.create seed in
        let d = 1 + Rng.int rng 4 in
        let lo = Vec.init d (fun _ -> Rng.uniform rng (-5.0) 0.0) in
        let hi = Vec.init d (fun _ -> Rng.uniform rng 0.1 5.0) in
        let c = Vec.init d (fun _ -> Rng.uniform rng (-2.0) 2.0) in
        let a =
          Array.init (2 * d) (fun i ->
              if i < d then Vec.basis d i else Vec.neg (Vec.basis d (i - d)))
        in
        let b = Array.init (2 * d) (fun i -> if i < d then hi.(i) else -.lo.(i - d)) in
        let expected =
          Array.fold_left ( +. ) 0.0
            (Array.mapi (fun j cj -> if cj >= 0.0 then cj *. hi.(j) else cj *. lo.(j)) c)
        in
        match Lp.maximize ~a ~b ~c with
        | Lp.Optimal { value; _ } -> Float.abs (value -. expected) < 1e-6
        | _ -> false);
  ]

let exact_tests =
  [
    t "exact classic LP" (fun () ->
        let a = [| [| q 1; q 0 |]; [| q 0; q 1 |]; [| q 1; q 1 |]; [| q (-1); q 0 |]; [| q 0; q (-1) |] |] in
        let b = [| q 2; q 3; q 4; q 0; q 0 |] in
        match Es.maximize ~a ~b ~c:[| q 1; q 1 |] with
        | Es.Optimal { value; _ } -> Alcotest.(check string) "value" "4" (Q.to_string value)
        | _ -> Alcotest.fail "expected optimal");
    t "exact rational optimum" (fun () ->
        (* max x st 3x <= 1 -> exactly 1/3 *)
        let a = [| [| q 3 |] |] and b = [| q 1 |] in
        match Es.maximize ~a ~b ~c:[| q 1 |] with
        | Es.Optimal { value; _ } -> Alcotest.(check string) "1/3" "1/3" (Q.to_string value)
        | _ -> Alcotest.fail "expected optimal");
    t "implied constraints" (fun () ->
        let a = [| [| q 1 |]; [| q (-1) |] |] and b = [| q 2; q 0 |] in
        Alcotest.(check bool) "x<=3 implied" true (Es.implied ~a ~b ~row:[| q 1 |] ~rhs:(q 3));
        Alcotest.(check bool) "x<=2 implied (tight)" true (Es.implied ~a ~b ~row:[| q 1 |] ~rhs:(q 2));
        Alcotest.(check bool) "x<=1 not implied" false (Es.implied ~a ~b ~row:[| q 1 |] ~rhs:(q 1)));
    t "infeasible implies everything" (fun () ->
        let a = [| [| q 1 |]; [| q (-1) |] |] and b = [| q (-1); q (-1) |] in
        Alcotest.(check bool) "implied" true (Es.implied ~a ~b ~row:[| q 1 |] ~rhs:(q (-100))));
    qt "float and exact solvers agree" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        let rng = Rng.create seed in
        let d = 1 + Rng.int rng 3 in
        let m = d + 1 + Rng.int rng 4 in
        let ai = Array.init m (fun _ -> Array.init d (fun _ -> Rng.int rng 7 - 3)) in
        let bi = Array.init m (fun _ -> Rng.int rng 10) in
        let ci = Array.init d (fun _ -> Rng.int rng 7 - 3) in
        let ea = Array.map (Array.map q) ai and eb = Array.map q bi and ec = Array.map q ci in
        let fa = Array.map (Array.map float_of_int) ai
        and fb = Array.map float_of_int bi
        and fc = Array.map float_of_int ci in
        match (Es.maximize ~a:ea ~b:eb ~c:ec, Lp.maximize ~a:fa ~b:fb ~c:fc) with
        | Es.Optimal { value = ev; _ }, Lp.Optimal { value = fv; _ } ->
            Float.abs (Q.to_float ev -. fv) < 1e-6
        | Es.Infeasible, Lp.Infeasible | Es.Unbounded, Lp.Unbounded -> true
        | _ -> false);
  ]

let suites = [ ("lp.float", float_tests); ("lp.exact", exact_tests) ]
