(* Statistical and determinism tests for the PRNG. *)

module Rng = Scdb_rng.Rng

let t name f = Alcotest.test_case name `Quick f

let tests =
  [
    t "deterministic per seed" (fun () ->
        let a = Rng.create 99 and b = Rng.create 99 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
        done);
    t "different seeds differ" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let same = ref 0 in
        for _ = 1 to 64 do
          if Rng.bits64 a = Rng.bits64 b then incr same
        done;
        Alcotest.(check bool) "streams differ" true (!same < 4));
    t "split independence" (fun () ->
        let parent = Rng.create 7 in
        let child = Rng.split parent in
        let same = ref 0 in
        for _ = 1 to 64 do
          if Rng.bits64 parent = Rng.bits64 child then incr same
        done;
        Alcotest.(check bool) "independent" true (!same < 4));
    t "copy preserves stream" (fun () ->
        let a = Rng.create 5 in
        ignore (Rng.bits64 a);
        let b = Rng.copy a in
        Alcotest.(check int64) "equal next" (Rng.bits64 a) (Rng.bits64 b));
    t "draw counter counts every primitive draw" (fun () ->
        let g = Rng.create 3 in
        Alcotest.(check int) "fresh" 0 (Rng.draw_count g);
        ignore (Rng.bits64 g);
        ignore (Rng.float g);
        let before = Rng.draw_count g in
        Alcotest.(check bool) "counted" true (before >= 2);
        ignore (Rng.unit_vector g 4);
        Alcotest.(check bool) "derived draws count too" true (Rng.draw_count g > before));
    t "provenance registry records the lineage tree" (fun () ->
        Rng.Provenance.reset ();
        Rng.Provenance.set_tracking true;
        Fun.protect
          ~finally:(fun () ->
            Rng.Provenance.set_tracking false;
            Rng.Provenance.reset ())
        @@ fun () ->
        let a = Rng.create 17 in
        let b = Rng.split a in
        let c = Rng.copy b in
        ignore (Rng.bits64 c);
        let nodes = Rng.Provenance.snapshot () in
        Alcotest.(check int) "three generators" 3 (List.length nodes);
        (match nodes with
        | [ na; nb; nc ] ->
            Alcotest.(check string) "ops in creation order" "create/split/copy"
              (String.concat "/"
                 [ na.Rng.Provenance.op; nb.Rng.Provenance.op; nc.Rng.Provenance.op ]);
            Alcotest.(check int) "root has no parent" (-1) na.Rng.Provenance.parent;
            Alcotest.(check int) "split's parent is root" (Rng.lineage a)
              nb.Rng.Provenance.parent;
            Alcotest.(check int) "copy's parent is the split" (Rng.lineage b)
              nc.Rng.Provenance.parent;
            Alcotest.(check int) "draws attributed to the copy" 1 nc.Rng.Provenance.draws
        | _ -> Alcotest.fail "unexpected snapshot shape"));
    t "float in range with correct mean" (fun () ->
        let rng = Rng.create 11 in
        let n = 50_000 in
        let sum = ref 0.0 in
        for _ = 1 to n do
          let x = Rng.float rng in
          Alcotest.(check bool) "range" true (x >= 0.0 && x < 1.0);
          sum := !sum +. x
        done;
        Alcotest.(check (float 0.01)) "mean" 0.5 (!sum /. float_of_int n));
    t "int uniform chi-square" (fun () ->
        let rng = Rng.create 12 in
        let buckets = Array.make 10 0 in
        let n = 50_000 in
        for _ = 1 to n do
          let k = Rng.int rng 10 in
          buckets.(k) <- buckets.(k) + 1
        done;
        let expected = float_of_int n /. 10.0 in
        let chi2 =
          Array.fold_left (fun acc c -> acc +. (((float_of_int c -. expected) ** 2.0) /. expected)) 0.0 buckets
        in
        (* 9 dof: chi2 < 27.9 at the 0.1% level *)
        Alcotest.(check bool) (Printf.sprintf "chi2=%.1f" chi2) true (chi2 < 27.9));
    t "int rejects non-positive bound" (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Rng.int: non-positive bound") (fun () ->
            ignore (Rng.int (Rng.create 0) 0)));
    t "gaussian moments" (fun () ->
        let rng = Rng.create 13 in
        let n = 50_000 in
        let sum = ref 0.0 and sum2 = ref 0.0 in
        for _ = 1 to n do
          let x = Rng.gaussian rng in
          sum := !sum +. x;
          sum2 := !sum2 +. (x *. x)
        done;
        Alcotest.(check (float 0.03)) "mean" 0.0 (!sum /. float_of_int n);
        Alcotest.(check (float 0.05)) "variance" 1.0 (!sum2 /. float_of_int n));
    t "unit_vector has norm 1" (fun () ->
        let rng = Rng.create 14 in
        for d = 1 to 6 do
          let v = Rng.unit_vector rng d in
          Alcotest.(check (float 1e-9)) "norm" 1.0 (Vec.norm v)
        done);
    t "gaussian_fast moments" (fun () ->
        let rng = Rng.create 16 in
        let n = 100_000 in
        let sum = ref 0.0 and sum2 = ref 0.0 in
        for _ = 1 to n do
          let x = Rng.gaussian_fast rng in
          sum := !sum +. x;
          sum2 := !sum2 +. (x *. x)
        done;
        Alcotest.(check (float 0.03)) "mean" 0.0 (!sum /. float_of_int n);
        Alcotest.(check (float 0.05)) "variance" 1.0 (!sum2 /. float_of_int n));
    t "gaussian_fast chi-square against normal deciles" (fun () ->
        (* Bin into 10 equal-probability cells using the standard
           normal deciles; Pearson's statistic at 9 dof. *)
        let deciles =
          [| -1.2815515655; -0.8416212336; -0.5244005127; -0.2533471031; 0.0;
             0.2533471031; 0.5244005127; 0.8416212336; 1.2815515655 |]
        in
        let bin x =
          let i = ref 0 in
          while !i < 9 && x >= deciles.(!i) do
            incr i
          done;
          !i
        in
        let rng = Rng.create 17 in
        let n = 100_000 in
        let buckets = Array.make 10 0 in
        for _ = 1 to n do
          let k = bin (Rng.gaussian_fast rng) in
          buckets.(k) <- buckets.(k) + 1
        done;
        let expected = float_of_int n /. 10.0 in
        let chi2 =
          Array.fold_left
            (fun acc c -> acc +. (((float_of_int c -. expected) ** 2.0) /. expected))
            0.0 buckets
        in
        (* 9 dof: chi2 < 27.9 at the 0.1% level *)
        Alcotest.(check bool) (Printf.sprintf "chi2=%.1f" chi2) true (chi2 < 27.9));
    t "gaussian_fast reaches the ziggurat tail" (fun () ->
        (* P(|x| > 3.4426) ≈ 5.75e-4: 200k draws see the tail branch
           ~115 times in expectation; seeing none would mean the tail
           sampler is dead. *)
        let rng = Rng.create 18 in
        let tail = ref 0 in
        for _ = 1 to 200_000 do
          if Float.abs (Rng.gaussian_fast rng) > 3.442619855899 then incr tail
        done;
        Alcotest.(check bool)
          (Printf.sprintf "tail hits = %d" !tail)
          true
          (!tail > 50 && !tail < 250));
    t "unit_vector_into_fast has norm 1 and is deterministic" (fun () ->
        let a = Rng.create 19 and b = Rng.create 19 in
        let u = Vec.create 5 and v = Vec.create 5 in
        Rng.unit_vector_into_fast a u;
        Rng.unit_vector_into_fast b v;
        Alcotest.(check (float 1e-9)) "norm" 1.0 (Vec.norm u);
        Alcotest.(check bool) "same stream, same vector" true (u = v));
    t "in_ball_into matches in_ball bit-for-bit" (fun () ->
        let a = Rng.create 20 and b = Rng.create 20 in
        let v = Vec.create 3 in
        for _ = 1 to 50 do
          let w = Rng.in_ball a 3 in
          Rng.in_ball_into b v;
          Alcotest.(check bool) "identical" true (w = v)
        done);
    t "in_ball_into_fast stays inside the ball" (fun () ->
        let rng = Rng.create 21 in
        let v = Vec.create 4 in
        for _ = 1 to 1_000 do
          Rng.in_ball_into_fast rng v;
          Alcotest.(check bool) "inside" true (Vec.norm v <= 1.0 +. 1e-9)
        done);
    t "in_ball stays inside and fills shells" (fun () ->
        let rng = Rng.create 15 in
        let n = 20_000 in
        let inner = ref 0 in
        for _ = 1 to n do
          let v = Rng.in_ball rng 2 in
          Alcotest.(check bool) "inside" true (Vec.norm v <= 1.0 +. 1e-9);
          if Vec.norm v <= 0.5 then incr inner
        done;
        (* P(norm <= 1/2) = 1/4 in dimension 2 *)
        Alcotest.(check (float 0.02)) "shell" 0.25 (float_of_int !inner /. float_of_int n));
    t "categorical respects weights" (fun () ->
        let rng = Rng.create 16 in
        let counts = Array.make 3 0 in
        let n = 30_000 in
        for _ = 1 to n do
          let k = Rng.categorical rng [| 1.0; 2.0; 7.0 |] in
          counts.(k) <- counts.(k) + 1
        done;
        Alcotest.(check (float 0.02)) "w0" 0.1 (float_of_int counts.(0) /. float_of_int n);
        Alcotest.(check (float 0.02)) "w1" 0.2 (float_of_int counts.(1) /. float_of_int n));
    t "categorical rejects zero weights" (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Rng.categorical: zero total weight")
          (fun () -> ignore (Rng.categorical (Rng.create 0) [| 0.0; 0.0 |])));
    t "categorical never selects a zero-weight tail" (fun () ->
        (* The cumulative scan can run off the end when x rounds up to
           the total; the fallback must land on a positive weight, not
           blindly on the last index. *)
        let rng = Rng.create 31 in
        for _ = 1 to 20_000 do
          Alcotest.(check int) "only index 0 has mass" 0
            (Rng.categorical rng [| 1.0; 0.0 |])
        done);
    t "categorical subnormal totals stay on positive weights" (fun () ->
        (* [x = float·total] rounds to the total itself for most draws
           when the total is the smallest subnormal, so the scan falls
           through on nearly every call. *)
        let rng = Rng.create 32 in
        for _ = 1 to 1_000 do
          Alcotest.(check int) "subnormal mass at index 0" 0
            (Rng.categorical rng [| 5e-324; 0.0 |])
        done);
    t "categorical draws exactly one float per call" (fun () ->
        let rng = Rng.create 33 in
        let before = Rng.draw_count rng in
        ignore (Rng.categorical rng [| 1.0; 0.0 |]);
        Alcotest.(check int) "one draw" (before + 1) (Rng.draw_count rng));
    t "shuffle is a permutation" (fun () ->
        let rng = Rng.create 17 in
        let a = Array.init 50 Fun.id in
        Rng.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check bool) "permutation" true (sorted = Array.init 50 Fun.id));
  ]

let suites = [ ("rng", tests) ]
