(* Tests for the telemetry additions: monotonic timer, histogram
   quantiles, schema v2 dump. *)

module Tel = Scdb_telemetry.Telemetry

let t name f = Alcotest.test_case name `Quick f

let with_enabled f =
  let was = Tel.enabled () in
  Tel.set_enabled true;
  Tel.reset ();
  Fun.protect ~finally:(fun () -> Tel.set_enabled was) f

let clock_tests =
  [
    t "monotonic and strictly advancing" (fun () ->
        let a = Tel.Clock.now () in
        (* Burn a little CPU so the clock must advance. *)
        let acc = ref 0.0 in
        for i = 1 to 100_000 do
          acc := !acc +. sqrt (float_of_int i)
        done;
        ignore !acc;
        let b = Tel.Clock.now () in
        Alcotest.(check bool) "b > a" true (b > a));
    t "never goes backwards across many reads" (fun () ->
        let prev = ref (Tel.Clock.now ()) in
        for _ = 1 to 10_000 do
          let x = Tel.Clock.now () in
          if x < !prev then Alcotest.fail "clock went backwards";
          prev := x
        done);
    t "timer measures a positive duration" (fun () ->
        with_enabled (fun () ->
            let timer = Tel.Timer.make "test.timer" in
            let tok = Tel.Timer.start timer in
            let acc = ref 0.0 in
            for i = 1 to 100_000 do
              acc := !acc +. sqrt (float_of_int i)
            done;
            ignore !acc;
            Tel.Timer.stop timer tok;
            match Tel.histogram_count "test.timer.seconds" with
            | Some n -> Alcotest.(check int) "one observation" 1 n
            | None -> Alcotest.fail "timer histogram missing"));
  ]

let quantile_tests =
  [
    t "empty histogram quantiles are zero" (fun () ->
        with_enabled (fun () ->
            let h = Tel.Histogram.make "test.q.empty" in
            Alcotest.(check (float 0.0)) "p50" 0.0 (Tel.Histogram.quantile h 0.5)));
    t "single observation pins every quantile" (fun () ->
        with_enabled (fun () ->
            let h = Tel.Histogram.make "test.q.single" in
            Tel.Histogram.observe h 3.25;
            List.iter
              (fun q ->
                Alcotest.(check (float 1e-9)) "pinned" 3.25 (Tel.Histogram.quantile h q))
              [ 0.0; 0.5; 0.9; 0.99; 1.0 ]));
    t "quantiles are monotone and bracketed by min/max" (fun () ->
        with_enabled (fun () ->
            let h = Tel.Histogram.make "test.q.mono" in
            let rng = Scdb_rng.Rng.create 11 in
            for _ = 1 to 1000 do
              Tel.Histogram.observe h (Scdb_rng.Rng.uniform rng 0.0 10.0)
            done;
            let p50 = Tel.Histogram.quantile h 0.50 in
            let p90 = Tel.Histogram.quantile h 0.90 in
            let p99 = Tel.Histogram.quantile h 0.99 in
            Alcotest.(check bool) "p50 <= p90" true (p50 <= p90);
            Alcotest.(check bool) "p90 <= p99" true (p90 <= p99);
            Alcotest.(check bool) "within range" true (p50 >= 0.0 && p99 <= 10.0)));
    t "uniform sample p50 lands near the median" (fun () ->
        with_enabled (fun () ->
            let h = Tel.Histogram.make "test.q.uniform" in
            let rng = Scdb_rng.Rng.create 5 in
            for _ = 1 to 20_000 do
              Tel.Histogram.observe h (Scdb_rng.Rng.uniform rng 0.0 1.0)
            done;
            let p50 = Tel.Histogram.quantile h 0.50 in
            (* Log-spaced buckets are coarse but the interpolated median
               of U[0,1] must land in the right neighbourhood. *)
            Alcotest.(check bool) "p50 near 0.5" true (p50 > 0.3 && p50 < 0.7)));
    t "dump carries schema v2 and quantile keys" (fun () ->
        with_enabled (fun () ->
            let h = Tel.Histogram.make "test.q.dump" in
            Tel.Histogram.observe h 1.0;
            Tel.Histogram.observe h 2.0;
            let json = Tel.dump ~only_nonzero:true () in
            let contains needle =
              let nl = String.length needle and l = String.length json in
              let rec go i = i + nl <= l && (String.sub json i nl = needle || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) "schema v2" true (contains "spatialdb-telemetry/2");
            Alcotest.(check bool) "p50" true (contains "\"p50\"");
            Alcotest.(check bool) "p90" true (contains "\"p90\"");
            Alcotest.(check bool) "p99" true (contains "\"p99\"")));
  ]

let suites = [ ("telemetry.clock", clock_tests); ("telemetry.quantile", quantile_tests) ]
