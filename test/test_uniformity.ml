(* Chi-square uniformity audits: statistical tripwires for sampler
   refactors.

   Each test draws a fixed-seed batch of samples, bins them on a coarse
   grid of equal-measure cells and checks Pearson's statistic
   Σ (O−E)²/E against the 99.9% quantile of the χ² distribution with
   (cells − 1) degrees of freedom.  A correct sampler fails a given
   seed with probability ≈ 1e-3; a sampler whose stationary law drifts
   from uniform (broken chord arithmetic, biased lattice moves, wrong
   Karp–Luby acceptance) blows the statistic up by orders of
   magnitude.  The batches are deterministic given the seed, so a red
   run is always reproducible. *)

module P = Scdb_polytope.Polytope
module HR = Scdb_sampling.Hit_and_run
module W = Scdb_sampling.Walk
module G = Scdb_sampling.Grid
module Rng = Scdb_rng.Rng
open Scdb_core

let ts name f = Alcotest.test_case name `Slow f
let q = Rational.of_int

(* 99.9% quantiles of the chi-square distribution. *)
let chi2_999_df7 = 24.322
let chi2_999_df15 = 37.697

let chi_square ~observed ~expected =
  let s = ref 0.0 in
  Array.iteri
    (fun i o ->
      let e = expected.(i) in
      let d = float_of_int o -. e in
      s := !s +. (d *. d /. e))
    observed;
  !s

(* Bin a point of [0,1]² onto a k×k grid. *)
let cell_of ~k x =
  let clamp v = Stdlib.min (k - 1) (Stdlib.max 0 (int_of_float (v *. float_of_int k))) in
  (clamp x.(0) * k) + clamp x.(1)

let hit_and_run_uniformity () =
  let k = 4 in
  let n = 4_000 in
  let square = P.box [| 0.0; 0.0 |] [| 1.0; 1.0 |] in
  let rng = Rng.create 20260806 in
  let centre = [| 0.5; 0.5 |] in
  let observed = Array.make (k * k) 0 in
  for _ = 1 to n do
    let p = HR.sample_polytope rng square ~start:centre ~steps:64 in
    let c = cell_of ~k p in
    observed.(c) <- observed.(c) + 1
  done;
  let expected = Array.make (k * k) (float_of_int n /. float_of_int (k * k)) in
  let stat = chi_square ~observed ~expected in
  Alcotest.(check bool)
    (Printf.sprintf "hit-and-run chi2 = %.2f < %.3f (df 15)" stat chi2_999_df15)
    true (stat < chi2_999_df15)

let lattice_walk_uniformity () =
  (* The DFK grid walk on the square, binned the same way.  The walk
     lives on lattice vertices, so cells are defined by vertex counts:
     use a grid step that divides the cell edge exactly and count
     vertices per cell as the expected measure. *)
  let k = 4 in
  let n = 3_000 in
  let grid = G.make ~step:0.0625 ~dim:2 in
  (* vertices with index 0..16 per axis lie in [0,1]; the walk is
     restricted to the open square via a strict membership test so each
     axis has 15 interior indices 1..15, hence odd counts per cell. *)
  let square = P.box [| 0.0; 0.0 |] [| 1.0; 1.0 |] in
  let mem x = P.mem square x && x.(0) > 0.0 && x.(0) < 1.0 && x.(1) > 0.0 && x.(1) < 1.0 in
  let rng = Rng.create 42 in
  let observed = Array.make (k * k) 0 in
  let start = [| 0.5; 0.5 |] in
  for _ = 1 to n do
    let p = W.sample rng ~grid ~mem ~start ~steps:600 in
    let c = cell_of ~k p in
    observed.(c) <- observed.(c) + 1
  done;
  (* Count lattice vertices per cell to get exact expected masses. *)
  let counts = Array.make (k * k) 0 in
  for i = 1 to 15 do
    for j = 1 to 15 do
      let c = cell_of ~k [| float_of_int i *. 0.0625; float_of_int j *. 0.0625 |] in
      counts.(c) <- counts.(c) + 1
    done
  done;
  let total = float_of_int (Array.fold_left ( + ) 0 counts) in
  let expected = Array.map (fun c -> float_of_int n *. float_of_int c /. total) counts in
  let stat = chi_square ~observed ~expected in
  Alcotest.(check bool)
    (Printf.sprintf "lattice walk chi2 = %.2f < %.3f (df 15)" stat chi2_999_df15)
    true (stat < chi2_999_df15)

(* Batched kernel at K chains: pool the K per-chain endpoints of many
   short batches and bin them like the single-chain audit.  K=1 runs
   the Compat (polar) stream, K>1 the Fast (ziggurat) stream, so both
   direction generators face the same statistical tripwire. *)
let batched_uniformity ~chains () =
  let k = 4 in
  let n = 4_000 (* total retained points, across chains *) in
  let batches = n / chains in
  let square = P.box [| 0.0; 0.0 |] [| 1.0; 1.0 |] in
  let rng = Rng.create (977 + chains) in
  let starts = Array.init chains (fun _ -> [| 0.5; 0.5 |]) in
  let observed = Array.make (k * k) 0 in
  for _ = 1 to batches do
    let rngs = Array.init chains (fun _ -> Rng.split rng) in
    let pts = HR.sample_polytope_batch rngs square ~starts ~steps:64 in
    Array.iter
      (fun p ->
        let c = cell_of ~k p in
        observed.(c) <- observed.(c) + 1)
      pts
  done;
  let total = batches * chains in
  let expected = Array.make (k * k) (float_of_int total /. float_of_int (k * k)) in
  let stat = chi_square ~observed ~expected in
  Alcotest.(check bool)
    (Printf.sprintf "batched K=%d chi2 = %.2f < %.3f (df 15)" chains stat chi2_999_df15)
    true (stat < chi2_999_df15)

let batched_ball_walk_uniformity () =
  let module BW = Scdb_sampling.Ball_walk in
  let k = 4 in
  let chains = 4 in
  let batches = 900 in
  let square = P.box [| 0.0; 0.0 |] [| 1.0; 1.0 |] in
  let rng = Rng.create 31337 in
  let starts = Array.init chains (fun _ -> [| 0.5; 0.5 |]) in
  let observed = Array.make (k * k) 0 in
  for _ = 1 to batches do
    let rngs = Array.init chains (fun _ -> Rng.split rng) in
    let pts = BW.sample_polytope_batch rngs square ~starts ~steps:220 ~radius:0.35 () in
    Array.iter
      (fun p ->
        let c = cell_of ~k p in
        observed.(c) <- observed.(c) + 1)
      pts
  done;
  let total = batches * chains in
  let expected = Array.make (k * k) (float_of_int total /. float_of_int (k * k)) in
  let stat = chi_square ~observed ~expected in
  Alcotest.(check bool)
    (Printf.sprintf "batched ball walk chi2 = %.2f < %.3f (df 15)" stat chi2_999_df15)
    true (stat < chi2_999_df15)

let union_uniformity () =
  (* Two disjoint unit squares: Algorithm 1 must put half the mass in
     each and be uniform within each.  8 equal-area cells: box × 2×2
     quadrants. *)
  let n = 2_000 in
  let rng = Rng.create 77 in
  let cfg = Convex_obs.practical_config in
  let a = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 0; q 0 |] [| q 1; q 1 |])) in
  let b = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 2; q 0 |] [| q 3; q 1 |])) in
  let u = Union.union2 a b in
  let params = Params.make ~gamma:0.05 ~eps:0.15 ~delta:0.1 () in
  let observed = Array.make 8 0 in
  for _ = 1 to n do
    let x = Observable.sample_exn u rng params in
    let box = if x.(0) >= 1.5 then 1 else 0 in
    let lx = if box = 0 then x.(0) else x.(0) -. 2.0 in
    let qx = if lx >= 0.5 then 1 else 0 and qy = if x.(1) >= 0.5 then 1 else 0 in
    let c = (box * 4) + (qx * 2) + qy in
    observed.(c) <- observed.(c) + 1
  done;
  let expected = Array.make 8 (float_of_int n /. 8.0) in
  let stat = chi_square ~observed ~expected in
  Alcotest.(check bool)
    (Printf.sprintf "union chi2 = %.2f < %.3f (df 7)" stat chi2_999_df7)
    true (stat < chi2_999_df7)

let suites =
  [
    ( "uniformity.chi_square",
      [
        ts "hit-and-run on the unit square" hit_and_run_uniformity;
        ts "lattice walk on the unit square" lattice_walk_uniformity;
        ts "batched hit-and-run, K=1 (Compat stream)" (batched_uniformity ~chains:1);
        ts "batched hit-and-run, K=4 (Fast stream)" (batched_uniformity ~chains:4);
        ts "batched hit-and-run, K=16 (Fast stream)" (batched_uniformity ~chains:16);
        ts "batched ball walk, K=4" batched_ball_walk_uniformity;
        ts "2-relation union (Algorithm 1)" union_uniformity;
      ] );
  ]
