(* Entry point: one alcotest section per library. *)

let () =
  Alcotest.run "spatialdb"
    (List.concat
       [
         Test_bigint.suites;
         Test_rational.suites;
         Test_linalg.suites;
         Test_rng.suites;
         Test_lp.suites;
         Test_constr.suites;
         Test_qe.suites;
         Test_polytope.suites;
         Test_hull.suites;
         Test_sampling.suites;
         Test_core.suites;
         Test_gis.suites;
         Test_uniformity.suites;
         Test_telemetry.suites;
         Test_trace.suites;
         Test_diag.suites;
         Test_report.suites;
         Test_log.suites;
         Test_flight.suites;
         Test_plan.suites;
         Test_vm.suites;
         Test_progress.suites;
         Test_obs.suites;
         Test_profile.suites;
         Test_audit.suites;
         Test_cli.suites;
       ])
