(* Tests for the (ε,δ) accuracy-contract auditor: canonical relation
   fingerprints, exact oracles, the Clopper–Pearson bracket, coverage
   verification (including the corrupted-budget regression and the
   domains-vs-seq differential), and whole-relation audits. *)

module A = Scdb_audit.Audit
module Rng = Scdb_rng.Rng
module Tel = Scdb_telemetry.Telemetry
module VE = Scdb_polytope.Volume_exact
module Ch = Scdb_sampling.Chernoff
module Q = Rational

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f
let q = Q.of_int
let qq a b = Q.of_ints a b

let check_fp_eq name a b =
  Alcotest.(check string) name (Relation.fingerprint a) (Relation.fingerprint b)

let check_fp_ne name a b =
  Alcotest.(check bool) name true (Relation.fingerprint a <> Relation.fingerprint b)

(* x >= 0 /\ y >= 0 /\ x + y <= 1, built from atoms so the tests can
   permute and rescale the representation. *)
let tri_atoms =
  [
    Atom.ge (Term.var 0) Term.zero;
    Atom.ge (Term.var 1) Term.zero;
    Atom.le (Term.add (Term.var 0) (Term.var 1)) (Term.const Q.one);
  ]

let triangle = Relation.make ~dim:2 [ tri_atoms ]

let fingerprint_tests =
  [
    t "16 lowercase hex digits" (fun () ->
        let fp = Relation.fingerprint triangle in
        Alcotest.(check int) "length" 16 (String.length fp);
        Alcotest.(check bool) "hex" true
          (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) fp));
    t "insensitive to atom order within a tuple" (fun () ->
        check_fp_eq "reversed atoms" triangle (Relation.make ~dim:2 [ List.rev tri_atoms ]));
    t "insensitive to tuple order and duplicate tuples" (fun () ->
        let b = Relation.box [| q 2; q 0 |] [| q 3; q 1 |] in
        let ta = List.hd (Relation.tuples triangle) and tb = List.hd (Relation.tuples b) in
        check_fp_eq "swapped tuples" (Relation.make ~dim:2 [ ta; tb ])
          (Relation.make ~dim:2 [ tb; ta ]);
        check_fp_eq "duplicated tuple" (Relation.make ~dim:2 [ ta ])
          (Relation.make ~dim:2 [ ta; ta ]));
    t "insensitive to positive atom rescaling" (fun () ->
        let scaled =
          Atom.le
            (Term.add (Term.monomial (q 2) 0) (Term.monomial (q 2) 1))
            (Term.const (q 2))
        in
        check_fp_eq "2x+2y<=2 is x+y<=1"
          triangle
          (Relation.make ~dim:2
             [ [ List.nth tri_atoms 0; List.nth tri_atoms 1; scaled ] ]));
    t "equations are sign-normalized" (fun () ->
        let pos = Atom.eq (Term.var 0) (Term.const Q.one) in
        let neg = Atom.eq (Term.neg (Term.var 0)) (Term.const Q.minus_one) in
        check_fp_eq "x=1 is -x=-1" (Relation.make ~dim:1 [ [ pos ] ])
          (Relation.make ~dim:1 [ [ neg ] ]));
    t "stable across the small/big bigint boundary" (fun () ->
        (* 2^62 overflows the tagged-int fast path, so rescaling by it
           exercises the big-integer rational branch of the canonical
           form. *)
        let big = Q.of_string "4611686018427387904" in
        let huge =
          Atom.le
            (Term.add (Term.monomial big 0) (Term.monomial big 1))
            (Term.const big)
        in
        check_fp_eq "2^62 x + 2^62 y <= 2^62 is x+y<=1" triangle
          (Relation.make ~dim:2
             [ [ List.nth tri_atoms 0; List.nth tri_atoms 1; huge ] ]));
    t "dimension is part of the key" (fun () ->
        let a = Atom.ge (Term.var 0) Term.zero in
        check_fp_ne "same atoms, different ambient dim"
          (Relation.make ~dim:1 [ [ a ] ])
          (Relation.make ~dim:2 [ [ a ] ]));
    t "no collisions across the example corpus" (fun () ->
        let shapes =
          [
            Relation.unit_cube 1;
            Relation.unit_cube 2;
            Relation.unit_cube 3;
            Relation.standard_simplex 2;
            Relation.standard_simplex 3;
            Relation.box [| q 0; q 0 |] [| q 2; q 3 |];
            Relation.cube 2 (q 2);
            Relation.cross_polytope 2 Q.one;
            Relation.union triangle (Relation.box [| q 2; q 0 |] [| q 3; q 1 |]);
            Relation.inter (Relation.unit_cube 2) (Relation.cube 2 Q.half);
          ]
        in
        let fps = List.map Relation.fingerprint shapes in
        let sorted = List.sort_uniq String.compare fps in
        Alcotest.(check int) "all distinct" (List.length shapes) (List.length sorted));
    t "identical shapes from different constructors share a key" (fun () ->
        (* The standard 2-simplex IS the hand-built triangle. *)
        check_fp_eq "simplex = triangle" (Relation.standard_simplex 2) triangle);
  ]

let cp_tests =
  [
    t "degenerate endpoints" (fun () ->
        let low0, _ = A.clopper_pearson ~hits:0 ~runs:10 () in
        let _, high1 = A.clopper_pearson ~hits:10 ~runs:10 () in
        Alcotest.(check (float 0.0)) "hits=0 low" 0.0 low0;
        Alcotest.(check (float 0.0)) "hits=runs high" 1.0 high1);
    t "all-hit lower bound matches the closed form" (fun () ->
        (* With hits = runs the exact lower bound is (α/2)^(1/n). *)
        List.iter
          (fun n ->
            let low, _ = A.clopper_pearson ~hits:n ~runs:n () in
            let expect = Float.exp (Float.log 0.025 /. float_of_int n) in
            Alcotest.(check (float 1e-6)) (Printf.sprintf "n=%d" n) expect low)
          [ 10; 36; 40; 60 ]);
    t "40/40 passes delta=0.1, 30/30 does not" (fun () ->
        let low40, _ = A.clopper_pearson ~hits:40 ~runs:40 () in
        let low30, _ = A.clopper_pearson ~hits:30 ~runs:30 () in
        Alcotest.(check bool) "40 certifies 0.9" true (low40 >= 0.9);
        Alcotest.(check bool) "30 cannot certify 0.9" true (low30 < 0.9));
    t "interval brackets the point estimate and is monotone in hits" (fun () ->
        let prev_low = ref (-1.0) and prev_high = ref (-1.0) in
        for h = 0 to 20 do
          let low, high = A.clopper_pearson ~hits:h ~runs:20 () in
          let p = float_of_int h /. 20.0 in
          Alcotest.(check bool) "low <= p <= high" true (low <= p && p <= high);
          Alcotest.(check bool) "monotone" true (low >= !prev_low && high >= !prev_high);
          prev_low := low;
          prev_high := high
        done);
    t "symmetric under hit/miss exchange" (fun () ->
        let low, high = A.clopper_pearson ~hits:7 ~runs:25 () in
        let low', high' = A.clopper_pearson ~hits:18 ~runs:25 () in
        Alcotest.(check (float 1e-9)) "low = 1 - high'" low (1.0 -. high');
        Alcotest.(check (float 1e-9)) "high = 1 - low'" high (1.0 -. low'));
    t "rejects invalid arguments" (fun () ->
        List.iter
          (fun f ->
            try
              ignore (f ());
              Alcotest.fail "expected Invalid_argument"
            with Invalid_argument _ -> ())
          [
            (fun () -> A.clopper_pearson ~hits:0 ~runs:0 ());
            (fun () -> A.clopper_pearson ~hits:5 ~runs:4 ());
            (fun () -> A.clopper_pearson ~hits:(-1) ~runs:4 ());
            (fun () -> A.clopper_pearson ~confidence:1.0 ~hits:1 ~runs:4 ());
          ]);
  ]

let oracle_tests =
  [
    t "unit d-simplex has volume 1/d!" (fun () ->
        let fact = [| 1; 1; 2; 6; 24 |] in
        for d = 1 to 4 do
          match A.exact_truth (Relation.standard_simplex d) with
          | Some v ->
              Alcotest.(check bool)
                (Printf.sprintf "d=%d" d)
                true
                (Q.equal v (qq 1 fact.(d)))
          | None -> Alcotest.failf "no exact volume for simplex d=%d" d
        done);
    t "boxes multiply" (fun () ->
        match A.exact_truth (Relation.box [| q 0; q (-1) |] [| q 2; q 3 |]) with
        | Some v -> Alcotest.(check bool) "2*4" true (Q.equal v (q 8))
        | None -> Alcotest.fail "no exact volume for a box");
    t "inclusion-exclusion on overlapping boxes" (fun () ->
        let a = Relation.box [| q 0; q 0 |] [| q 2; q 2 |] in
        let b = Relation.box [| q 1; q 1 |] [| q 3; q 3 |] in
        match A.exact_truth (Relation.union a b) with
        | Some v -> Alcotest.(check bool) "4+4-1" true (Q.equal v (q 7))
        | None -> Alcotest.fail "no exact volume for the union");
    t "unbounded and oversized relations have no closed form" (fun () ->
        let half = Relation.halfspace ~dim:2 (Term.sub (Term.var 0) (Term.const Q.one)) in
        Alcotest.(check bool) "unbounded" true (A.exact_truth half = None);
        let cube = Relation.unit_cube 1 in
        let many =
          List.fold_left
            (fun acc _ -> Relation.union acc cube)
            cube
            (List.init 16 Fun.id)
        in
        Alcotest.(check bool) "tuple blowup guard" true
          (A.exact_truth ~max_tuples:16 many = None));
    ts "exact value cross-validates against a sampled estimate" (fun () ->
        let eps = 0.2 and delta = 0.1 in
        let truth = Q.to_float (Option.get (A.exact_truth triangle)) in
        let rng = Rng.create 42 in
        match
          Scdb_gis.Plan_exec.observable_of_relation ~gamma:0.05 ~eps ~delta
            ~task:Scdb_plan.Plan.Volume rng triangle
        with
        | None -> Alcotest.fail "triangle should be estimable"
        | Some (_, obs) ->
            let est = Scdb_core.Observable.volume obs rng ~eps ~delta in
            Alcotest.(check bool)
              (Printf.sprintf "|%g - %g| <= eps*truth" est truth)
              true
              (Float.abs (est -. truth) <= eps *. truth));
  ]

(* A deterministic pseudo-estimator: the value depends only on the
   seed, like the real pipeline, but costs one rng draw. *)
let toy_estimate s =
  let rng = Rng.create s in
  Some (1.0 +. (0.05 *. (Rng.float rng -. 0.5)))

let verify_tests =
  [
    t "perfect estimator passes at 40 runs" (fun () ->
        let cov =
          A.verify ~eps:0.1 ~delta:0.1 ~runs:40 ~seed:1 ~truth:1.0 (fun _ -> Some 1.0)
        in
        Alcotest.(check int) "hits" 40 cov.A.hits;
        Alcotest.(check bool) "verdict" true (cov.A.verdict = A.Pass));
    t "declared estimation failures count as misses" (fun () ->
        let cov =
          A.verify ~eps:0.1 ~delta:0.1 ~runs:12 ~seed:1 ~truth:1.0 (fun _ -> None)
        in
        Alcotest.(check int) "hits" 0 cov.A.hits;
        Alcotest.(check bool) "verdict" true (cov.A.verdict = A.Fail);
        Alcotest.(check bool) "estimates stay nan" true
          (Array.for_all Float.is_nan cov.A.estimates));
    t "too few replicates is inconclusive, not a pass" (fun () ->
        let cov =
          A.verify ~eps:0.1 ~delta:0.1 ~runs:8 ~seed:1 ~truth:1.0 (fun _ -> Some 1.0)
        in
        Alcotest.(check bool) "verdict" true (cov.A.verdict = A.Inconclusive));
    t "corrupted Chernoff budget fails the contract" (fun () ->
        (* The contract estimator for p = 0.5 at (ε=0.05, δ=0.1) needs
           ~2.4k Chernoff samples; starving it to 120 (a twentieth)
           leaves per-replicate coverage near 40%, which the bracket
           rejects decisively.  The honest budget on the same seeds
           must not fail. *)
        let coin ~samples s =
          let rng = Rng.create s in
          Some (Ch.estimate_fraction rng ~samples (fun rng -> Rng.float rng < 0.5))
        in
        let starved =
          A.verify ~eps:0.05 ~delta:0.1 ~runs:25 ~seed:7 ~truth:0.5 (coin ~samples:120)
        in
        Alcotest.(check bool)
          (Printf.sprintf "starved coverage %.2f fails" starved.A.coverage)
          true
          (starved.A.verdict = A.Fail);
        let funded =
          A.verify ~eps:0.05 ~delta:0.1 ~runs:25 ~seed:7 ~truth:0.5 (coin ~samples:2400)
        in
        Alcotest.(check bool)
          (Printf.sprintf "funded coverage %.2f does not fail" funded.A.coverage)
          true
          (funded.A.verdict <> A.Fail));
    t "domains and seq replicates agree bit for bit" (fun () ->
        let run mode = A.verify ~jobs:3 ~mode ~eps:0.1 ~delta:0.1 ~runs:10 ~seed:11 ~truth:1.0 toy_estimate in
        let d = run A.Domains and s = run A.Seq in
        Alcotest.(check (array (float 0.0))) "estimates" s.A.estimates d.A.estimates;
        Alcotest.(check int) "hits" s.A.hits d.A.hits;
        Alcotest.(check bool) "verdict" true (s.A.verdict = d.A.verdict));
    t "jobs fan-out merges telemetry into the default context" (fun () ->
        let was = Tel.enabled () in
        Tel.set_enabled true;
        Tel.reset ();
        Fun.protect ~finally:(fun () -> Tel.set_enabled was) @@ fun () ->
        ignore
          (A.verify ~jobs:2 ~mode:A.Seq ~eps:0.1 ~delta:0.1 ~runs:6 ~seed:3 ~truth:1.0
             toy_estimate);
        Alcotest.(check (option int)) "replicates" (Some 6)
          (Tel.counter_value "audit.replicates");
        let v name = Option.value ~default:0 (Tel.counter_value name) in
        Alcotest.(check int) "hits+misses" 6 (v "audit.hits" + v "audit.misses"));
    t "rejects invalid arguments" (fun () ->
        List.iter
          (fun f ->
            try
              ignore (f ());
              Alcotest.fail "expected Invalid_argument"
            with Invalid_argument _ -> ())
          [
            (fun () -> A.verify ~eps:0.1 ~delta:0.1 ~runs:0 ~seed:1 ~truth:1.0 toy_estimate);
            (fun () ->
              A.verify ~jobs:0 ~eps:0.1 ~delta:0.1 ~runs:4 ~seed:1 ~truth:1.0 toy_estimate);
            (fun () -> A.verify ~eps:1.5 ~delta:0.1 ~runs:4 ~seed:1 ~truth:1.0 toy_estimate);
            (fun () -> A.verify ~eps:0.1 ~delta:0.1 ~runs:4 ~seed:1 ~truth:0.0 toy_estimate);
          ]);
  ]

let union_fig1 =
  Relation.union triangle (Relation.box [| q 2; q 0 |] [| q 3; q 1 |])

let run_tests =
  [
    ts "audits the Figure 1 triangle against the exact oracle" (fun () ->
        match A.run ~eps:0.2 ~delta:0.1 ~runs:3 ~seed:42 triangle with
        | Error e -> Alcotest.failf "audit failed: %s" e
        | Ok a ->
            Alcotest.(check bool) "oracle" true (a.A.oracle = A.Exact);
            Alcotest.(check (float 1e-12)) "truth" 0.5 a.A.truth;
            Alcotest.(check string) "fingerprint" (Relation.fingerprint triangle)
              a.A.fingerprint;
            Alcotest.(check int) "all replicates hit" 3 a.A.cov.A.hits;
            Alcotest.(check bool) "budget rows" true (Array.length a.A.budget > 0);
            Array.iter
              (fun (r : A.budget_row) ->
                if r.A.b_op <> "guard" then begin
                  Alcotest.(check bool) "eps grant finite" true (Float.is_finite r.A.b_eps);
                  Alcotest.(check bool) "delta grant in (0,1)" true
                    (r.A.b_delta > 0.0 && r.A.b_delta < 1.0)
                end)
              a.A.budget);
    ts "audit documents are deterministic" (fun () ->
        let doc () =
          match A.run ~jobs:2 ~mode:A.Seq ~eps:0.2 ~delta:0.1 ~runs:2 ~seed:9 triangle with
          | Error e -> Alcotest.failf "audit failed: %s" e
          | Ok a ->
              A.to_json ~vars:[ "x"; "y" ] ~formula:"triangle" ~seed:9 ~jobs:2
                ~requested:"auto" a
        in
        Alcotest.(check string) "byte-identical" (doc ()) (doc ()));
    ts "corrupting the estimator budget fails the audited contract" (fun () ->
        (* A twentieth of the practical per-phase budget: same plan,
           same oracle, but the estimator can no longer honor the
           (ε,δ) it advertises — the auditor must notice. *)
        match A.run ~phase_samples:5 ~eps:0.2 ~delta:0.1 ~runs:12 ~seed:42 union_fig1 with
        | Error e -> Alcotest.failf "audit failed to run: %s" e
        | Ok a ->
            Alcotest.(check bool)
              (Printf.sprintf "coverage %.2f fails" a.A.cov.A.coverage)
              true
              (a.A.cov.A.verdict = A.Fail));
    t "strict exact oracle refuses shapes with no closed form" (fun () ->
        let half = Relation.halfspace ~dim:2 (Term.sub (Term.var 0) (Term.const Q.one)) in
        match A.run ~oracle:`Exact ~eps:0.2 ~delta:0.1 ~runs:2 ~seed:1 half with
        | Error e -> Alcotest.(check bool) "mentions reference" true
            (String.length e > 0)
        | Ok _ -> Alcotest.fail "expected an error");
    t "zero-volume relations are rejected" (fun () ->
        let line =
          Relation.make ~dim:2 [ [ Atom.eq (Term.var 0) Term.zero ] ]
        in
        match A.run ~eps:0.2 ~delta:0.1 ~runs:2 ~seed:1 line with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected an error");
  ]

let suites =
  [
    ("audit.fingerprint", fingerprint_tests);
    ("audit.clopper_pearson", cp_tests);
    ("audit.oracles", oracle_tests);
    ("audit.verify", verify_tests);
    ("audit.run", run_tests);
  ]
