(* Tests for the span tracer: nesting (also under exceptions), the
   zero-allocation disabled path, the span cap, and the Chrome
   trace-event export round-tripped through Json_min. *)

module Trace = Scdb_trace.Trace
module J = Scdb_trace.Json_min

let t name f = Alcotest.test_case name `Quick f

let with_trace f =
  let was = Trace.enabled () in
  Trace.set_enabled true;
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.reset ();
      Trace.set_enabled was)
    f

exception Boom

let structure_tests =
  [
    t "spans nest dynamically" (fun () ->
        with_trace (fun () ->
            Trace.span "outer" (fun () ->
                Trace.span "inner" (fun () -> ());
                Trace.span "inner2" (fun () -> ()));
            match Trace.spans () with
            | [ outer; inner; inner2 ] ->
                Alcotest.(check string) "outer name" "outer" outer.Trace.v_name;
                Alcotest.(check int) "outer is root" (-1) outer.Trace.v_parent;
                Alcotest.(check int) "inner parent" outer.Trace.v_id inner.Trace.v_parent;
                Alcotest.(check int) "inner2 parent" outer.Trace.v_id inner2.Trace.v_parent;
                Alcotest.(check int) "inner depth" 1 inner.Trace.v_depth
            | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)));
    t "spans close under exceptions and record the error" (fun () ->
        with_trace (fun () ->
            (try Trace.span "outer" (fun () -> Trace.span "inner" (fun () -> raise Boom)) with
            | Boom -> ());
            match Trace.spans () with
            | [ outer; inner ] ->
                Alcotest.(check bool) "outer closed" true (outer.Trace.v_dur_us >= 0.0);
                Alcotest.(check bool) "inner closed" true (inner.Trace.v_dur_us >= 0.0);
                Alcotest.(check bool) "outer has error attr" true
                  (List.mem_assoc "error" outer.Trace.v_attrs);
                Alcotest.(check bool) "inner has error attr" true
                  (List.mem_assoc "error" inner.Trace.v_attrs)
            | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)));
    t "start/finish pairs nest like span" (fun () ->
        with_trace (fun () ->
            let a = Trace.start "a" in
            let b = Trace.start "b" in
            Trace.finish b;
            Trace.finish a;
            match Trace.spans () with
            | [ va; vb ] ->
                Alcotest.(check int) "b under a" va.Trace.v_id vb.Trace.v_parent;
                Alcotest.(check bool) "both closed" true
                  (va.Trace.v_dur_us >= 0.0 && vb.Trace.v_dur_us >= 0.0)
            | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)));
    t "finish closes orphans left open by a non-local exit" (fun () ->
        with_trace (fun () ->
            let a = Trace.start "a" in
            let _b = Trace.start "b" in
            let _c = Trace.start "c" in
            (* Closing [a] directly must close b and c too. *)
            Trace.finish a;
            List.iter
              (fun v -> Alcotest.(check bool) (v.Trace.v_name ^ " closed") true (v.Trace.v_dur_us >= 0.0))
              (Trace.spans ())));
    t "attributes attach to the innermost open span" (fun () ->
        with_trace (fun () ->
            Trace.span "outer" (fun () ->
                Trace.span "inner" (fun () -> Trace.add_attr_int "k" 7));
            match Trace.spans () with
            | [ _; inner ] ->
                Alcotest.(check (option string)) "inner got k" (Some "7")
                  (List.assoc_opt "k" inner.Trace.v_attrs)
            | _ -> Alcotest.fail "expected 2 spans"));
    t "span cap stops recording, not execution" (fun () ->
        with_trace (fun () ->
            Trace.set_span_limit 3;
            Fun.protect
              ~finally:(fun () -> Trace.set_span_limit 200_000)
              (fun () ->
                let ran = ref 0 in
                for _ = 1 to 10 do
                  Trace.span "s" (fun () -> incr ran)
                done;
                Alcotest.(check int) "all bodies ran" 10 !ran;
                Alcotest.(check int) "recorded capped" 3 (Trace.count ()))));
  ]

let disabled_tests =
  [
    t "disabled start/finish allocates nothing" (fun () ->
        let was = Trace.enabled () in
        Trace.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Trace.set_enabled was)
          (fun () ->
            (* Warm up so any one-time allocation is out of the way. *)
            for _ = 1 to 100 do
              Trace.finish (Trace.start "hot")
            done;
            let before = Gc.allocated_bytes () in
            for _ = 1 to 100_000 do
              Trace.finish (Trace.start "hot");
              Trace.add_attr "k" "v"
            done;
            let after = Gc.allocated_bytes () in
            (* Gc.allocated_bytes itself boxes a float per call; anything
               beyond that slack means the disabled path allocates. *)
            Alcotest.(check bool) "no measurable allocation" true (after -. before < 256.0)));
    t "disabled spans record nothing" (fun () ->
        let was = Trace.enabled () in
        Trace.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Trace.set_enabled was)
          (fun () ->
            Trace.reset ();
            Trace.span "s" (fun () -> ());
            Alcotest.(check int) "no spans" 0 (Trace.count ())));
  ]

let export_tests =
  [
    t "chrome JSON round-trips with monotone non-negative ts/dur" (fun () ->
        with_trace (fun () ->
            Trace.span "root" ~attrs:[ ("dim", "2") ] (fun () ->
                for i = 1 to 5 do
                  Trace.span (Printf.sprintf "child%d" i) (fun () ->
                      let acc = ref 0.0 in
                      for j = 1 to 1000 do
                        acc := !acc +. sqrt (float_of_int j)
                      done;
                      ignore !acc)
                done);
            let json = Trace.to_chrome_json () in
            let doc = J.parse json in
            let events =
              match J.member "traceEvents" doc with
              | Some ev -> Option.get (J.to_list ev)
              | None -> Alcotest.fail "no traceEvents"
            in
            Alcotest.(check int) "all spans exported" (Trace.count ()) (List.length events);
            let last = ref 0.0 in
            List.iter
              (fun ev ->
                let ts = Option.get (J.to_float (Option.get (J.member "ts" ev))) in
                let dur = Option.get (J.to_float (Option.get (J.member "dur" ev))) in
                Alcotest.(check bool) "ts >= 0" true (ts >= 0.0);
                Alcotest.(check bool) "dur >= 0" true (dur >= 0.0);
                Alcotest.(check bool) "ts monotone" true (ts >= !last);
                last := ts)
              events;
            (* The root's args survive the round trip. *)
            let root = List.hd events in
            Alcotest.(check (option string)) "root name" (Some "root")
              (J.to_string (Option.get (J.member "name" root)));
            let args = Option.get (J.member "args" root) in
            Alcotest.(check (option string)) "dim attr" (Some "2")
              (J.to_string (Option.get (J.member "dim" args)))));
    t "json_escape handles quotes and control chars" (fun () ->
        with_trace (fun () ->
            Trace.span "weird \"name\"\n\t" (fun () -> ());
            let doc = J.parse (Trace.to_chrome_json ()) in
            let events = Option.get (J.to_list (Option.get (J.member "traceEvents" doc))) in
            Alcotest.(check (option string)) "name round-trips" (Some "weird \"name\"\n\t")
              (J.to_string (Option.get (J.member "name" (List.hd events))))));
    t "text tree indents by depth" (fun () ->
        with_trace (fun () ->
            Trace.span "a" (fun () -> Trace.span "b" (fun () -> ()));
            let tree = Trace.to_text_tree () in
            let lines = String.split_on_char '\n' tree in
            match lines with
            | a :: b :: _ ->
                Alcotest.(check bool) "a at margin" true (String.length a > 0 && a.[0] = 'a');
                Alcotest.(check bool) "b indented" true
                  (String.length b > 2 && b.[0] = ' ' && b.[1] = ' ' && b.[2] = 'b')
            | _ -> Alcotest.fail "expected two lines"));
  ]

let suites =
  [
    ("trace.structure", structure_tests);
    ("trace.disabled", disabled_tests);
    ("trace.export", export_tests);
  ]
