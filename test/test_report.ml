(* End-to-end tests for the spatialdb-report/4 generator on the paper's
   Figure 1 triangle. *)

module Report = Scdb_gis.Report
module J = Scdb_trace.Json_min

let ts name f = Alcotest.test_case name `Slow f
let t name f = Alcotest.test_case name `Quick f

let fig1 = "x >= 0 /\\ y >= 0 /\\ x + y <= 1"

let get name = function
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" name

let report_tests =
  [
    ts "figure 1 report is schema-valid with converging diagnostics" (fun () ->
        match Report.generate ~vars:[ "x"; "y" ] ~formula:fig1 ~seed:42 () with
        | Error e -> Alcotest.failf "generate failed: %s" e
        | Ok r ->
            let doc = J.parse r.Report.json in
            Alcotest.(check (option string)) "schema" (Some "spatialdb-report/4")
              (J.to_string (get "schema" (J.member "schema" doc)));
            (* The embedded plan is a valid spatialdb-plan/1 document
               budgeted for the report task. *)
            let plan = get "plan" (J.member "plan" doc) in
            Alcotest.(check (option string)) "plan schema" (Some "spatialdb-plan/1")
              (J.to_string (get "plan.schema" (J.member "schema" plan)));
            Alcotest.(check (option string)) "plan task" (Some "report")
              (J.to_string (get "plan.task" (J.member "task" plan)));
            (match Scdb_plan.Plan.of_json plan with
            | Ok p ->
                Alcotest.(check bool) "plan total_work positive" true
                  (p.Scdb_plan.Plan.total_work > 0.0)
            | Error e -> Alcotest.failf "embedded plan does not round-trip: %s" e);
            (* Every executed node has a finite, positive actual/predicted
               ratio. *)
            let rows =
              Option.get (J.to_list (get "cost_attribution" (J.member "cost_attribution" doc)))
            in
            Alcotest.(check bool) "attribution rows present" true (rows <> []);
            List.iter
              (fun row ->
                let actual =
                  Option.get (J.to_float (get "actual" (J.member "actual" row)))
                in
                let ratio = J.member "ratio" row in
                if actual > 0.0 then begin
                  match Option.bind ratio J.to_float with
                  | Some r ->
                      Alcotest.(check bool) "ratio finite and positive" true
                        (Float.is_finite r && r > 0.0)
                  | None -> Alcotest.fail "executed node has no finite ratio"
                end)
              rows;
            (* Arguments echo back. *)
            let args = get "args" (J.member "args" doc) in
            Alcotest.(check (option (float 0.0))) "seed" (Some 42.0)
              (J.to_float (get "seed" (J.member "seed" args)));
            Alcotest.(check (option string)) "formula" (Some fig1)
              (J.to_string (get "formula" (J.member "formula" args)));
            (* Deep trace: at least 10 nested spans. *)
            let span_count =
              Option.get (J.to_float (get "span_count" (J.member "span_count" doc)))
            in
            Alcotest.(check bool) "span_count >= 10" true (span_count >= 10.0);
            let events =
              Option.get
                (J.to_list (get "traceEvents" (J.member "traceEvents" (get "trace" (J.member "trace" doc)))))
            in
            Alcotest.(check int) "trace matches span_count" (int_of_float span_count)
              (List.length events);
            (* Telemetry snapshot rides along. *)
            Alcotest.(check (option string)) "telemetry schema" (Some "spatialdb-telemetry/2")
              (J.to_string
                 (get "telemetry.schema"
                    (J.member "schema" (get "telemetry" (J.member "telemetry" doc)))));
            (* Diagnostics: m >= 4 chains, per-coordinate R-hat < 1.1. *)
            let diag = get "diagnostics" (J.member "diagnostics" doc) in
            let chains =
              Option.get (J.to_float (get "chains" (J.member "chains" diag)))
            in
            Alcotest.(check bool) "chains >= 4" true (chains >= 4.0);
            let rhat = Option.get (J.to_list (get "rhat" (J.member "rhat" diag))) in
            Alcotest.(check int) "rhat per coordinate" 2 (List.length rhat);
            List.iter
              (fun v ->
                let x = Option.get (J.to_float v) in
                Alcotest.(check bool) "R-hat < 1.1" true (Float.is_finite x && x < 1.1))
              rhat;
            (* The triangle's volume is 1/2; eps = 0.2 at delta = 0.1. *)
            let vol = Option.get (J.to_float (get "volume" (J.member "volume" doc))) in
            Alcotest.(check bool) "volume near 0.5" true (vol > 0.35 && vol < 0.65);
            (* The separate Chrome trace parses on its own. *)
            let tdoc = J.parse r.Report.chrome_trace in
            Alcotest.(check bool) "chrome trace parses" true
              (J.member "traceEvents" tdoc <> None));
    ts "report generation is deterministic given the seed" (fun () ->
        let volume_of r =
          let doc = J.parse r.Report.json in
          Option.get (J.to_float (get "volume" (J.member "volume" doc)))
        in
        match
          ( Report.generate ~vars:[ "x"; "y" ] ~formula:fig1 ~seed:7 ~samples:4 (),
            Report.generate ~vars:[ "x"; "y" ] ~formula:fig1 ~seed:7 ~samples:4 () )
        with
        | Ok a, Ok b ->
            Alcotest.(check (float 0.0)) "same volume" (volume_of a) (volume_of b)
        | _ -> Alcotest.fail "generate failed");
    ts "whole report JSON is identical modulo clock fields" (fun () ->
        (* Strip everything wall-clock dependent — span timestamps and
           durations, plus timer histograms (named *.seconds), whose
           bucket placement depends on measured durations — and require
           the rest of the two documents to be structurally equal. *)
        let rec strip v =
          match v with
          | J.Obj kvs ->
              J.Obj
                (List.filter_map
                   (fun (k, v) ->
                     if k = "ts" || k = "dur" then None
                     else
                       match (k, v) with
                       | "histograms", J.Obj hs ->
                           Some
                             ( k,
                               J.Obj
                                 (List.filter
                                    (fun (n, _) ->
                                      not (String.ends_with ~suffix:".seconds" n))
                                    hs) )
                       | _ -> Some (k, strip v))
                   kvs)
          | J.Arr l -> J.Arr (List.map strip l)
          | x -> x
        in
        match
          ( Report.generate ~vars:[ "x"; "y" ] ~formula:fig1 ~seed:11 ~samples:4 (),
            Report.generate ~vars:[ "x"; "y" ] ~formula:fig1 ~seed:11 ~samples:4 () )
        with
        | Ok a, Ok b ->
            let da = strip (J.parse a.Report.json) and db = strip (J.parse b.Report.json) in
            Alcotest.(check bool) "structurally equal" true (da = db)
        | _ -> Alcotest.fail "generate failed");
    t "parse errors surface as Error" (fun () ->
        match Report.generate ~vars:[ "x" ] ~formula:"x >=" ~seed:1 () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a parse error");
    t "report restores the global enabled flags" (fun () ->
        let tel = Scdb_telemetry.Telemetry.enabled () in
        let trace = Scdb_trace.Trace.enabled () in
        ignore (Report.generate ~vars:[ "x" ] ~formula:"x >=" ~seed:1 ());
        Alcotest.(check bool) "telemetry restored" tel (Scdb_telemetry.Telemetry.enabled ());
        Alcotest.(check bool) "trace restored" trace (Scdb_trace.Trace.enabled ()));
  ]

let suites = [ ("gis.report", report_tests) ]
