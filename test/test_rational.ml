(* Unit and property tests for exact rationals. *)

module Q = Rational

let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let arbitrary_q =
  let gen =
    QCheck.Gen.(
      let* n = -10_000 -- 10_000 in
      let* d = 1 -- 10_000 in
      pure (Q.of_ints n d))
  in
  QCheck.make ~print:Q.to_string gen

let pair = QCheck.pair arbitrary_q arbitrary_q
let triple = QCheck.triple arbitrary_q arbitrary_q arbitrary_q

let unit_tests =
  [
    t "canonical form" (fun () ->
        Alcotest.(check string) "4/8" "1/2" (Q.to_string (Q.of_ints 4 8));
        Alcotest.(check string) "neg den" "-1/2" (Q.to_string (Q.of_ints 1 (-2)));
        Alcotest.(check string) "zero" "0" (Q.to_string (Q.of_ints 0 17)));
    t "of_string forms" (fun () ->
        Alcotest.(check string) "int" "42" (Q.to_string (Q.of_string "42"));
        Alcotest.(check string) "frac" "-3/7" (Q.to_string (Q.of_string "-3/7"));
        Alcotest.(check string) "decimal" "-13/4" (Q.to_string (Q.of_string "-3.25"));
        Alcotest.(check string) "decimal small" "1/100" (Q.to_string (Q.of_string "0.01")));
    t "of_float exact dyadic" (fun () ->
        Alcotest.(check string) "0.5" "1/2" (Q.to_string (Q.of_float 0.5));
        Alcotest.(check string) "0.75" "3/4" (Q.to_string (Q.of_float 0.75));
        Alcotest.(check string) "-42" "-42" (Q.to_string (Q.of_float (-42.0))));
    t "of_float rejects non-finite" (fun () ->
        List.iter
          (fun f ->
            try
              ignore (Q.of_float f);
              Alcotest.fail "expected Invalid_argument"
            with Invalid_argument _ -> ())
          [ Float.nan; Float.infinity; Float.neg_infinity ]);
    t "floor and ceil" (fun () ->
        Alcotest.(check string) "floor 7/2" "3" (Bigint.to_string (Q.floor (Q.of_ints 7 2)));
        Alcotest.(check string) "ceil 7/2" "4" (Bigint.to_string (Q.ceil (Q.of_ints 7 2)));
        Alcotest.(check string) "floor -7/2" "-4" (Bigint.to_string (Q.floor (Q.of_ints (-7) 2)));
        Alcotest.(check string) "ceil -7/2" "-3" (Bigint.to_string (Q.ceil (Q.of_ints (-7) 2)));
        Alcotest.(check string) "floor 3" "3" (Bigint.to_string (Q.floor (Q.of_int 3))));
    t "pow" (fun () ->
        Alcotest.(check string) "(2/3)^3" "8/27" (Q.to_string (Q.pow (Q.of_ints 2 3) 3));
        Alcotest.(check string) "(2/3)^-2" "9/4" (Q.to_string (Q.pow (Q.of_ints 2 3) (-2))));
    t "inv zero raises" (fun () ->
        Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Q.inv Q.zero)));
    t "division by zero raises" (fun () ->
        Alcotest.check_raises "x/0" Division_by_zero (fun () -> ignore (Q.div Q.one Q.zero)));
  ]

let property_tests =
  [
    qt "field: associativity of add" triple (fun (a, b, c) ->
        Q.equal (Q.add a (Q.add b c)) (Q.add (Q.add a b) c));
    qt "field: distributivity" triple (fun (a, b, c) ->
        Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    qt "field: mul inverse" arbitrary_q (fun a ->
        QCheck.assume (not (Q.is_zero a));
        Q.equal Q.one (Q.mul a (Q.inv a)));
    qt "sub/add inverse" pair (fun (a, b) -> Q.equal a (Q.add (Q.sub a b) b));
    qt "compare consistent with to_float" pair (fun (a, b) ->
        let c = Q.compare a b in
        let fc = Float.compare (Q.to_float a) (Q.to_float b) in
        c = 0 || fc = 0 || (c > 0) = (fc > 0));
    qt "of_float/to_float round trip" arbitrary_q (fun a ->
        (* to_float is exact for small rationals only up to rounding; the
           dyadic round trip through of_float must reproduce the float. *)
        let f = Q.to_float a in
        Float.equal f (Q.to_float (Q.of_float f)));
    qt "string round trip" arbitrary_q (fun a -> Q.equal a (Q.of_string (Q.to_string a)));
    qt "floor <= x < floor+1" arbitrary_q (fun a ->
        let fl = Q.of_bigint (Q.floor a) in
        Q.compare fl a <= 0 && Q.compare a (Q.add fl Q.one) < 0);
    qt "canonical: gcd(num,den)=1" pair (fun (a, b) ->
        let s = Q.add a b in
        Bigint.equal (Bigint.gcd s.Q.num s.Q.den) Bigint.one || Q.is_zero s);
  ]


let interval_tests =
  let module I = Interval in
  [
    t "construction and containment" (fun () ->
        let iv = I.make 1.0 2.0 in
        Alcotest.(check bool) "in" true (I.contains iv 1.5);
        Alcotest.(check bool) "out" false (I.contains iv 2.5);
        (try
           ignore (I.make 2.0 1.0);
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()));
    t "arithmetic encloses true results" (fun () ->
        let a = I.point 0.1 and b = I.point 0.2 in
        Alcotest.(check bool) "sum" true (I.contains (I.add a b) (0.1 +. 0.2));
        Alcotest.(check bool) "product" true (I.contains (I.mul a b) (0.1 *. 0.2));
        Alcotest.(check bool) "difference" true (I.contains (I.sub b a) 0.1));
    t "mul handles sign combinations" (fun () ->
        let m = I.mul (I.make (-2.0) 3.0) (I.make (-1.0) 4.0) in
        Alcotest.(check bool) "lo" true (m.I.lo <= -8.0);
        Alcotest.(check bool) "hi" true (m.I.hi >= 12.0));
    t "certified sign" (fun () ->
        Alcotest.(check bool) "neg" true (I.sign (I.make (-2.0) (-1.0)) = `Negative);
        Alcotest.(check bool) "pos" true (I.sign (I.make 1.0 2.0) = `Positive);
        Alcotest.(check bool) "zero" true (I.sign (I.make (-1.0) 1.0) = `Zero_in));
  ]

(* The denominator-one / shared-denominator / coprime fast paths in
   [add] and the cross-gcd [mul] must be unobservable next to the
   textbook formulas, and [hash] must agree with [equal] regardless of
   whether a value's components were produced by the small-int or the
   limb [Bigint] path. *)

let naive_add a b =
  Q.make
    (Bigint.add (Bigint.mul a.Q.num b.Q.den) (Bigint.mul b.Q.num a.Q.den))
    (Bigint.mul a.Q.den b.Q.den)

let naive_mul a b = Q.make (Bigint.mul a.Q.num b.Q.num) (Bigint.mul a.Q.den b.Q.den)

let fastpath_tests =
  [
    qt "add matches naive cross-multiplication" pair (fun (a, b) ->
        Q.equal (Q.add a b) (naive_add a b));
    qt "mul matches naive formula" pair (fun (a, b) -> Q.equal (Q.mul a b) (naive_mul a b));
    qt "integer add shortcut" (QCheck.pair QCheck.small_signed_int QCheck.small_signed_int)
      (fun (x, y) -> Q.equal (Q.add (Q.of_int x) (Q.of_int y)) (Q.of_int (x + y)));
    qt "shared denominator add" (QCheck.triple QCheck.small_signed_int QCheck.small_signed_int QCheck.small_nat)
      (fun (x, y, d) ->
        let d = d + 1 in
        Q.equal (Q.add (Q.of_ints x d) (Q.of_ints y d)) (Q.of_ints (x + y) d));
    t "hash consistent with equal across bigint routes" (fun () ->
        (* The same rational assembled from Small components and from
           Big intermediates that cancel back down must collide. *)
        let big = Bigint.pow Bigint.two 120 in
        List.iter
          (fun (n, d) ->
            let direct = Q.of_ints n d in
            let blown =
              Q.make (Bigint.mul (Bigint.of_int n) big) (Bigint.mul (Bigint.of_int d) big)
            in
            Alcotest.(check bool) "equal" true (Q.equal direct blown);
            Alcotest.(check int) "hash" (Q.hash direct) (Q.hash blown))
          [ (0, 7); (1, 2); (-3, 4); (355, 113); (max_int, 2); (min_int + 1, 3) ]);
    qt "sum and difference cancel exactly" pair (fun (a, b) ->
        Q.equal a (Q.sub (Q.add a b) b));
  ]

let suites =
  [ ("rational", unit_tests @ property_tests @ fastpath_tests); ("interval", interval_tests) ]
