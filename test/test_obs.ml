(* Tests for the observability contexts: merge laws (counter sum,
   exact histogram-quantile merge, empty-context identity), the
   2-domain differential (concurrent contexted runs merge to the same
   counters as sequential ones), the disabled hot path staying
   allocation-free with contexts in play, per-forest trace epochs,
   configurable log-ring capacity under concurrent writers, the
   bounded provenance table, and the status snapshot/JSON writer. *)

module Obs = Scdb_obs.Obs
module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace
module Log = Scdb_log.Log
module Rng = Scdb_rng.Rng
module J = Scdb_trace.Json_min

let t name f = Alcotest.test_case name `Quick f

let with_tel f =
  let was = Tel.enabled () in
  Tel.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Tel.set_enabled was;
      Obs.Ctx.clear_directory ())
    f

(* Deterministic pseudo-observations, no RNG stream involved. *)
let obs_values salt n =
  List.init n (fun i ->
      let x = float_of_int ((i * 37) + salt) in
      0.5 +. (x *. 1.7) +. (3000.0 *. float_of_int (i mod 3)))

let ctr_c = Tel.Counter.make "test.obs.counter"
let hist_h = Tel.Histogram.make "test.obs.hist"

let cval reg = Option.value ~default:0 (Tel.counter_value ~reg "test.obs.counter")

let hist_stats reg =
  let doc = J.parse (Tel.dump ~only_nonzero:true ~reg ()) in
  match Option.bind (J.member "histograms" doc) (J.member "test.obs.hist") with
  | None -> Alcotest.fail "histogram missing from dump"
  | Some h ->
      let f k = Option.get (Option.bind (J.member k h) J.to_float) in
      (f "count", f "p50", f "p90", f "p99", f "min", f "max", f "sum")

let merge_tests =
  [
    t "counter-sum law" (fun () ->
        with_tel (fun () ->
            let a = Obs.Ctx.create ~name:"a" () in
            let b = Obs.Ctx.create ~name:"b" () in
            Obs.Ctx.run a (fun () -> Tel.Counter.add ctr_c 7);
            Obs.Ctx.run b (fun () -> Tel.Counter.add ctr_c 11);
            let dst = Obs.Ctx.create ~name:"dst" () in
            Obs.Ctx.merge ~into:dst a;
            Obs.Ctx.merge ~into:dst b;
            Alcotest.(check int) "sum" 18 (cval (Obs.Ctx.registry dst));
            Alcotest.(check int) "src a unchanged" 7 (cval (Obs.Ctx.registry a));
            Alcotest.(check int) "src b unchanged" 11 (cval (Obs.Ctx.registry b))));
    t "merged histogram quantiles equal concatenated-fed ones" (fun () ->
        with_tel (fun () ->
            let xs = obs_values 1 200 and ys = obs_values 4777 150 in
            let a = Obs.Ctx.create ~name:"a" () in
            let b = Obs.Ctx.create ~name:"b" () in
            Obs.Ctx.run a (fun () -> List.iter (Tel.Histogram.observe hist_h) xs);
            Obs.Ctx.run b (fun () -> List.iter (Tel.Histogram.observe hist_h) ys);
            let dst = Obs.Ctx.create ~name:"dst" () in
            Obs.Ctx.merge ~into:dst a;
            Obs.Ctx.merge ~into:dst b;
            let concat = Obs.Ctx.create ~name:"concat" () in
            Obs.Ctx.run concat (fun () ->
                List.iter (Tel.Histogram.observe hist_h) (xs @ ys));
            let mn, mp50, mp90, mp99, mmin, mmax, msum =
              hist_stats (Obs.Ctx.registry dst)
            in
            let cn, cp50, cp90, cp99, cmin, cmax, csum =
              hist_stats (Obs.Ctx.registry concat)
            in
            Alcotest.(check (float 0.0)) "count" cn mn;
            (* The bucket populations, vmin/vmax and n merge exactly,
               so the interpolated quantiles are bit-identical — only
               the sum can differ by float association. *)
            Alcotest.(check (float 0.0)) "p50" cp50 mp50;
            Alcotest.(check (float 0.0)) "p90" cp90 mp90;
            Alcotest.(check (float 0.0)) "p99" cp99 mp99;
            Alcotest.(check (float 0.0)) "min" cmin mmin;
            Alcotest.(check (float 0.0)) "max" cmax mmax;
            Alcotest.(check bool)
              "sum within association slack" true
              (Float.abs (csum -. msum) /. Float.abs csum < 1e-12)));
    t "merging an empty context is the identity" (fun () ->
        with_tel (fun () ->
            let a = Obs.Ctx.create ~name:"a" () in
            Obs.Ctx.run a (fun () ->
                Tel.Counter.add ctr_c 5;
                List.iter (Tel.Histogram.observe hist_h) (obs_values 9 50));
            let before = Tel.dump ~only_nonzero:true ~reg:(Obs.Ctx.registry a) () in
            Obs.Ctx.merge ~into:a (Obs.Ctx.create ~name:"empty" ());
            let after = Tel.dump ~only_nonzero:true ~reg:(Obs.Ctx.registry a) () in
            Alcotest.(check string) "dump unchanged" before after));
    t "2-domain contexted runs merge to the same counters as sequential"
      (fun () ->
        with_tel (fun () ->
            let work salt () =
              Tel.Counter.add ctr_c (100 + salt);
              List.iter (Tel.Histogram.observe hist_h) (obs_values salt 300)
            in
            (* Concurrent: each job in its own context on its own domain. *)
            let ca0 = Obs.Ctx.create ~name:"par-0" () in
            let ca1 = Obs.Ctx.create ~name:"par-1" () in
            let d0 = Domain.spawn (fun () -> Obs.Ctx.run ca0 (work 1)) in
            let d1 = Domain.spawn (fun () -> Obs.Ctx.run ca1 (work 2)) in
            Domain.join d0;
            Domain.join d1;
            let par = Obs.Ctx.create ~name:"par" () in
            Obs.Ctx.merge ~into:par ca0;
            Obs.Ctx.merge ~into:par ca1;
            (* Sequential baseline: same jobs, same contexts shape. *)
            let cb0 = Obs.Ctx.create ~name:"seq-0" () in
            let cb1 = Obs.Ctx.create ~name:"seq-1" () in
            Obs.Ctx.run cb0 (work 1);
            Obs.Ctx.run cb1 (work 2);
            let seq = Obs.Ctx.create ~name:"seq" () in
            Obs.Ctx.merge ~into:seq cb0;
            Obs.Ctx.merge ~into:seq cb1;
            Alcotest.(check string)
              "merged dumps identical"
              (Tel.dump ~only_nonzero:true ~reg:(Obs.Ctx.registry seq) ())
              (Tel.dump ~only_nonzero:true ~reg:(Obs.Ctx.registry par) ())));
    t "span forests splice under a synthetic root" (fun () ->
        let was = Trace.enabled () in
        Trace.set_enabled true;
        Fun.protect ~finally:(fun () ->
            Trace.set_enabled was;
            Obs.Ctx.clear_directory ())
        @@ fun () ->
        let a = Trace.Forest.create () and b = Trace.Forest.create () in
        Trace.with_forest a (fun () -> Trace.span "alpha" (fun () -> ()));
        Trace.with_forest b (fun () ->
            Trace.span "beta" (fun () -> Trace.span "gamma" (fun () -> ())));
        Trace.Forest.merge_into ~name:"child" ~dst:a b;
        let views = Trace.Forest.spans a in
        Alcotest.(check int) "sizes add plus root" 4 (List.length views);
        let root =
          List.find (fun v -> v.Trace.v_name = "child") views
        in
        Alcotest.(check int) "synthetic root at depth 0" 0 root.Trace.v_depth;
        Alcotest.(check int) "synthetic root is a root" (-1) root.Trace.v_parent;
        Alcotest.(check bool)
          "span count attr" true
          (List.mem_assoc "spans" root.Trace.v_attrs);
        let beta = List.find (fun v -> v.Trace.v_name = "beta") views in
        Alcotest.(check int) "src root re-parented" root.Trace.v_id
          beta.Trace.v_parent;
        let gamma = List.find (fun v -> v.Trace.v_name = "gamma") views in
        Alcotest.(check int) "nesting preserved" beta.Trace.v_id
          gamma.Trace.v_parent;
        Alcotest.(check int) "depth shifted" 2 gamma.Trace.v_depth);
  ]

let alloc_tests =
  [
    t "disabled counter bump stays allocation-free with contexts live" (fun () ->
        let was = Tel.enabled () in
        Tel.set_enabled false;
        Fun.protect
          ~finally:(fun () ->
            Tel.set_enabled was;
            Obs.Ctx.clear_directory ())
        @@ fun () ->
        (* A created (but uninstalled) context must not change the
           disabled fast path. *)
        let c = Obs.Ctx.create ~name:"idle" () in
        let f () =
          for _ = 1 to 1000 do
            Tel.Counter.incr ctr_c
          done
        in
        f ();
        let w0 = Gc.minor_words () in
        f ();
        let dw = Gc.minor_words () -. w0 in
        Alcotest.(check bool)
          (Printf.sprintf "minor words %.0f < 256" dw)
          true (dw < 256.0);
        (* And with the context installed it is the same one-branch path. *)
        Obs.Ctx.run c (fun () ->
            f ();
            let w1 = Gc.minor_words () in
            f ();
            let dw = Gc.minor_words () -. w1 in
            Alcotest.(check bool)
              (Printf.sprintf "contexted minor words %.0f < 256" dw)
              true (dw < 256.0)));
  ]

let epoch_tests =
  [
    t "a recreated forest restarts the trace clock" (fun () ->
        let burn () =
          let acc = ref 0.0 in
          for i = 1 to 200_000 do
            acc := !acc +. sqrt (float_of_int i)
          done;
          ignore !acc
        in
        let f1 = Trace.Forest.create () in
        burn ();
        let f2 = Trace.Forest.create () in
        Alcotest.(check bool)
          "later forest, later epoch" true
          (Trace.Forest.epoch f2 > Trace.Forest.epoch f1));
    t "reset restamps the ambient epoch" (fun () ->
        let f = Trace.current_forest () in
        let e0 = Trace.Forest.epoch f in
        let acc = ref 0.0 in
        for i = 1 to 200_000 do
          acc := !acc +. sqrt (float_of_int i)
        done;
        ignore !acc;
        Trace.reset ();
        Alcotest.(check bool)
          "epoch moved forward" true
          (Trace.Forest.epoch f > e0));
  ]

let seq_of_line line =
  match J.member "seq" (J.parse line) with
  | Some v -> int_of_float (Option.get (J.to_float v))
  | None -> Alcotest.fail "log line without seq"

let log_tests =
  [
    t "ring wraparound at a non-default capacity" (fun () ->
        let was = Log.enabled () in
        Log.set_enabled true;
        Log.set_level Log.Info;
        Fun.protect ~finally:(fun () -> Log.set_enabled was) @@ fun () ->
        let s = Log.Sink.create ~ring_capacity:8 () in
        Log.with_sink s (fun () ->
            for i = 1 to 20 do
              Log.info "test.ring" [ Log.int "i" i ]
            done);
        let tail = Log.Sink.tail s in
        Alcotest.(check int) "tail bounded by capacity" 8 (List.length tail);
        Alcotest.(check int) "seq counts every event" 20 (Log.Sink.seq s);
        (* Oldest first, consecutive, and ending at the last event. *)
        let seqs = List.map seq_of_line tail in
        Alcotest.(check (list int)) "last 8 events in order"
          [ 12; 13; 14; 15; 16; 17; 18; 19 ]
          seqs);
    t "two domains share one sink without tearing lines" (fun () ->
        let was = Log.enabled () in
        Log.set_enabled true;
        Log.set_level Log.Info;
        Fun.protect ~finally:(fun () -> Log.set_enabled was) @@ fun () ->
        let s = Log.Sink.create ~ring_capacity:64 () in
        let writer tag =
          Log.with_sink s (fun () ->
              for i = 1 to 100 do
                Log.info ("test.dom." ^ tag) [ Log.int "i" i; Log.str "t" tag ]
              done)
        in
        let d0 = Domain.spawn (fun () -> writer "a") in
        let d1 = Domain.spawn (fun () -> writer "b") in
        Domain.join d0;
        Domain.join d1;
        Alcotest.(check int) "every event counted" 200 (Log.Sink.seq s);
        let tail = Log.Sink.tail s in
        Alcotest.(check int) "ring full" 64 (List.length tail);
        (* Whole-line interleaving: every ring entry is valid JSON with
           the expected shape. *)
        List.iter
          (fun line ->
            let doc = J.parse line in
            (match Option.bind (J.member "event" doc) J.to_string with
            | Some e
              when e = "test.dom.a" || e = "test.dom.b" -> ()
            | _ -> Alcotest.fail ("unexpected event in: " ^ line));
            ignore (seq_of_line line))
          tail);
    t "sink merge appends tails and sums counters" (fun () ->
        let was = Log.enabled () in
        Log.set_enabled true;
        Log.set_level Log.Info;
        Fun.protect ~finally:(fun () -> Log.set_enabled was) @@ fun () ->
        let a = Log.Sink.create ~ring_capacity:16 () in
        let b = Log.Sink.create ~ring_capacity:16 () in
        Log.with_sink a (fun () -> Log.warn "test.merge.a" []);
        Log.with_sink b (fun () ->
            Log.info "test.merge.b" [];
            Log.error "test.merge.berr" []);
        Log.Sink.merge_into ~dst:a b;
        Alcotest.(check int) "events summed" 3 (Log.Sink.seq a);
        Alcotest.(check int) "warns summed" 1 (Log.Sink.warn_count a);
        Alcotest.(check int) "errors summed" 1 (Log.Sink.error_count a);
        Alcotest.(check int) "tail appended" 3 (List.length (Log.Sink.tail a)));
  ]

let prov_tests =
  [
    t "10k splits stay bounded by the table cap" (fun () ->
        let tbl = Rng.Provenance.Table.create ~cap:1000 () in
        Rng.Provenance.with_table tbl (fun () ->
            Rng.Provenance.set_tracking true;
            let root = Rng.create 7 in
            for _ = 1 to 10_000 do
              ignore (Rng.split root)
            done);
        Alcotest.(check int) "size capped" 1000 (Rng.Provenance.Table.size tbl);
        (* root + 10_000 splits registered, 1000 retained. *)
        Alcotest.(check int) "dropped accounted" 9001
          (Rng.Provenance.Table.dropped tbl));
    t "clear empties the ambient table" (fun () ->
        let tbl = Rng.Provenance.Table.create () in
        Rng.Provenance.with_table tbl (fun () ->
            Rng.Provenance.set_tracking true;
            ignore (Rng.create 3);
            Alcotest.(check bool) "tracked" true
              (Rng.Provenance.snapshot () <> []);
            Rng.Provenance.clear ();
            Alcotest.(check (list int)) "empty" []
              (List.map
                 (fun i -> i.Rng.Provenance.id)
                 (Rng.Provenance.snapshot ()))));
    t "merge re-roots nodes whose parent is in neither table" (fun () ->
        let a = Rng.Provenance.Table.create () in
        let orphan =
          Rng.Provenance.with_table a (fun () ->
              Rng.Provenance.set_tracking true;
              let root = Rng.create 11 in
              Rng.split root)
        in
        let b = Rng.Provenance.Table.create () in
        Rng.Provenance.with_table b (fun () ->
            Rng.Provenance.set_tracking true;
            (* Parent lives in [a], not in [b] or the destination. *)
            ignore (Rng.split orphan));
        let dst = Rng.Provenance.Table.create () in
        Rng.Provenance.Table.merge_into ~dst b;
        Rng.Provenance.with_table dst (fun () ->
            match Rng.Provenance.snapshot () with
            | [ n ] ->
                Alcotest.(check int) "re-rooted" (-1) n.Rng.Provenance.parent
            | l -> Alcotest.fail (Printf.sprintf "expected 1 node, got %d" (List.length l)));
        (* Merging into a table that does hold the parent keeps it. *)
        Rng.Provenance.Table.merge_into ~dst:a b;
        Rng.Provenance.with_table a (fun () ->
            let nodes = Rng.Provenance.snapshot () in
            Alcotest.(check int) "appended" 3 (List.length nodes);
            let last = List.nth nodes 2 in
            Alcotest.(check int) "parent preserved"
              (Rng.lineage orphan) last.Rng.Provenance.parent));
  ]

let status_tests =
  [
    t "snapshot covers the directory and write is readable JSON" (fun () ->
        with_tel (fun () ->
            let c = Obs.Ctx.create ~name:"status-job" () in
            Obs.Ctx.run c (fun () -> Tel.Counter.add ctr_c 3);
            Obs.Ctx.set_ess c 12.5;
            Obs.Ctx.mark_done c;
            let rows = Obs.Status.snapshot () in
            Alcotest.(check bool) "default row present" true
              (List.exists (fun r -> r.Obs.Status.r_name = "default") rows);
            let r =
              List.find (fun r -> r.Obs.Status.r_name = "status-job") rows
            in
            Alcotest.(check bool) "done" true r.Obs.Status.r_done;
            Alcotest.(check (float 0.0)) "ess carried" 12.5
              (Option.get r.Obs.Status.r_ess);
            let path = Filename.temp_file "spatialdb_status" ".json" in
            Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
            Obs.Status.write path rows;
            let ic = open_in path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let doc = J.parse s in
            Alcotest.(check (option string))
              "schema" (Some "spatialdb-status/1")
              (Option.bind (J.member "schema" doc) J.to_string);
            let ctxs =
              Option.get (Option.bind (J.member "contexts" doc) J.to_list)
            in
            Alcotest.(check int) "all rows serialized" (List.length rows)
              (List.length ctxs)));
  ]

let suites =
  [
    ("obs.merge", merge_tests);
    ("obs.alloc", alloc_tests);
    ("obs.epoch", epoch_tests);
    ("obs.log", log_tests);
    ("obs.prov", prov_tests);
    ("obs.status", status_tests);
  ]
