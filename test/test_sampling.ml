(* Tests for grids, walks, hit-and-run, rejection, Chernoff helpers,
   rounding and the multi-phase volume estimator. *)

module P = Scdb_polytope.Polytope
module G = Scdb_sampling.Grid
module W = Scdb_sampling.Walk
module HR = Scdb_sampling.Hit_and_run
module Rej = Scdb_sampling.Rejection
module Ch = Scdb_sampling.Chernoff
module Ro = Scdb_sampling.Rounding
module Vol = Scdb_sampling.Volume
module Rng = Scdb_rng.Rng

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let grid_tests =
  [
    t "point round trips" (fun () ->
        let g = G.make ~step:0.25 ~dim:2 in
        let idx = G.of_point g [| 0.6; -0.3 |] in
        Alcotest.(check bool) "rounded" true
          (Vec.equal_eps 1e-12 [| 0.5; -0.25 |] (G.to_point g idx)));
    t "step_for respects the schedule" (fun () ->
        let g = G.step_for ~gamma:0.1 ~dim:4 ~scale:2.0 in
        Alcotest.(check (float 1e-12)) "p = γ·scale/d^1.5" (0.1 *. 2.0 /. 8.0) g.G.step);
    t "neighbours are 2d at distance p" (fun () ->
        let g = G.make ~step:0.5 ~dim:3 in
        let ns = G.neighbours g [| 0; 0; 0 |] in
        Alcotest.(check int) "count" 6 (List.length ns);
        List.iter
          (fun n ->
            Alcotest.(check (float 1e-12)) "distance" 0.5
              (Vec.dist (G.to_point g n) (G.to_point g [| 0; 0; 0 |])))
          ns);
    t "count_in_ball matches area asymptotics" (fun () ->
        let g = G.make ~step:0.05 ~dim:2 in
        let count = G.count_in_ball g 1.0 in
        let approx = float_of_int count *. G.cell_volume g in
        Alcotest.(check bool) "close to pi" true (Float.abs (approx -. Float.pi) < 0.1));
    t "invalid step" (fun () ->
        try
          ignore (G.make ~step:0.0 ~dim:1);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

let walk_tests =
  [
    t "walk stays inside" (fun () ->
        let rng = Rng.create 1 in
        let g = G.make ~step:0.1 ~dim:2 in
        let mem x = P.mem (P.unit_cube 2) x in
        let final = W.sample rng ~grid:g ~mem ~start:[| 0.5; 0.5 |] ~steps:500 in
        Alcotest.(check bool) "inside" true (mem final));
    t "start outside rejected" (fun () ->
        let rng = Rng.create 2 in
        let g = G.make ~step:0.1 ~dim:2 in
        try
          ignore (W.walk rng ~grid:g ~mem:(fun _ -> false) ~start:[| 0; 0 |] ~steps:1);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    ts "stationary distribution is uniform (chi-square on 1D segment)" (fun () ->
        (* Walk on {0,...,9} (grid step 1 on [0, 9.5]): uniform stationary. *)
        let rng = Rng.create 3 in
        let g = G.make ~step:1.0 ~dim:1 in
        let mem x = x.(0) >= -0.5 && x.(0) <= 9.5 in
        let counts = Array.make 10 0 in
        let n = 6000 in
        for _ = 1 to n do
          let p = W.sample rng ~grid:g ~mem ~start:[| 0.0 |] ~steps:300 in
          let k = int_of_float (Float.round p.(0)) in
          counts.(k) <- counts.(k) + 1
        done;
        let e = float_of_int n /. 10.0 in
        let chi2 = Array.fold_left (fun acc c -> acc +. (((float_of_int c -. e) ** 2.) /. e)) 0.0 counts in
        (* 9 dof, 0.1% critical value 27.9 *)
        Alcotest.(check bool) (Printf.sprintf "chi2=%.1f" chi2) true (chi2 < 27.9));
    t "trajectory has steps+1 entries" (fun () ->
        let rng = Rng.create 4 in
        let g = G.make ~step:0.5 ~dim:1 in
        let tr = W.trajectory rng ~grid:g ~mem:(fun x -> Float.abs x.(0) <= 2.0) ~start:[| 0 |] ~steps:20 in
        Alcotest.(check int) "length" 21 (List.length tr));
  ]

let hit_and_run_tests =
  [
    t "ball chord endpoints" (fun () ->
        match HR.ball_chord ~centre:[| 0.; 0. |] ~radius:2.0 [| 0.; 0. |] [| 1.; 0. |] with
        | Some (lo, hi) ->
            Alcotest.(check (float 1e-9)) "lo" (-2.0) lo;
            Alcotest.(check (float 1e-9)) "hi" 2.0 hi
        | None -> Alcotest.fail "expected chord");
    t "ball chord misses" (fun () ->
        Alcotest.(check bool) "none" true
          (Option.is_none (HR.ball_chord ~centre:[| 0.; 0. |] ~radius:1.0 [| 3.; 0. |] [| 0.; 1. |])));
    t "intersect chords" (fun () ->
        let c1 = HR.polytope_chord (P.cube 2 1.0) in
        let c2 = HR.ball_chord ~centre:[| 0.; 0. |] ~radius:0.5 in
        match HR.intersect_chords [ c1; c2 ] [| 0.; 0. |] [| 1.; 0. |] with
        | Some (lo, hi) ->
            Alcotest.(check (float 1e-9)) "lo" (-0.5) lo;
            Alcotest.(check (float 1e-9)) "hi" 0.5 hi
        | None -> Alcotest.fail "expected chord");
    ts "mean of samples near centroid" (fun () ->
        let rng = Rng.create 5 in
        let tri = P.simplex 2 in
        let start = ref [| 0.25; 0.25 |] in
        let n = 4000 in
        let sum = Vec.create 2 in
        for _ = 1 to n do
          let p = HR.sample_polytope rng tri ~start:!start ~steps:25 in
          Alcotest.(check bool) "inside" true (P.mem ~slack:1e-9 tri p);
          start := p;
          sum.(0) <- sum.(0) +. p.(0);
          sum.(1) <- sum.(1) +. p.(1)
        done;
        (* centroid of the standard triangle is (1/3, 1/3) *)
        Alcotest.(check (float 0.02)) "mean x" (1.0 /. 3.0) (sum.(0) /. float_of_int n);
        Alcotest.(check (float 0.02)) "mean y" (1.0 /. 3.0) (sum.(1) /. float_of_int n));
  ]

let rejection_tests =
  [
    t "acceptance rate near area ratio" (fun () ->
        let rng = Rng.create 6 in
        let mem x = Vec.norm x <= 1.0 in
        let _, stats =
          Rej.sample_many rng ~lo:[| -1.; -1. |] ~hi:[| 1.; 1. |] ~mem ~count:100_000 ~max_attempts:20_000
        in
        (* pi/4 ≈ 0.785 *)
        Alcotest.(check (float 0.02)) "rate" (Float.pi /. 4.0) (Rej.acceptance_rate stats));
    t "budget exhaustion returns none" (fun () ->
        let rng = Rng.create 7 in
        Alcotest.(check bool) "none" true
          (Option.is_none
             (Rej.sample rng ~lo:[| 0. |] ~hi:[| 1. |] ~mem:(fun _ -> false) ~max_attempts:100)));
  ]

let chernoff_tests =
  [
    t "sample sizes are monotone" (fun () ->
        let n1 = Ch.samples_for_ratio ~eps:0.1 ~delta:0.1 ~p_lower:0.5 in
        let n2 = Ch.samples_for_ratio ~eps:0.05 ~delta:0.1 ~p_lower:0.5 in
        let n3 = Ch.samples_for_ratio ~eps:0.1 ~delta:0.01 ~p_lower:0.5 in
        Alcotest.(check bool) "smaller eps needs more" true (n2 > n1);
        Alcotest.(check bool) "smaller delta needs more" true (n3 > n1));
    t "estimate_fraction concentrates" (fun () ->
        let rng = Rng.create 8 in
        let p = Ch.estimate_fraction rng ~samples:20_000 (fun r -> Rng.float r < 0.3) in
        Alcotest.(check (float 0.02)) "p" 0.3 p);
    t "median_of_means robust to heavy tail" (fun () ->
        let rng = Rng.create 9 in
        (* mean 1 mixture with rare huge outcomes *)
        let draw r = if Rng.float r < 0.001 then 200.0 else 0.8 +. (0.4 *. Rng.float r) in
        let m = Ch.median_of_means rng ~blocks:9 ~block_size:200 draw in
        Alcotest.(check bool) "near 1" true (Float.abs (m -. 1.0) < 0.3));
    t "invalid parameters rejected" (fun () ->
        List.iter
          (fun f -> try ignore (f ()); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> ())
          [
            (fun () -> Ch.samples_for_additive ~eps:0.0 ~delta:0.1);
            (fun () -> Ch.samples_for_ratio ~eps:0.1 ~delta:0.1 ~p_lower:0.0);
            (fun () -> Ch.repeats_for_confidence ~delta:1.5);
          ]);
    t "adaptive estimate concentrates" (fun () ->
        let rng = Rng.create 12 in
        let p =
          Ch.estimate_fraction_adaptive rng ~eps:0.1 ~delta:0.1 ~p_floor:0.01 (fun r ->
              Rng.float r < 0.3)
        in
        Alcotest.(check bool) "near 0.3" true (Float.abs (p -. 0.3) < 0.05));
    t "adaptive estimate folds the pilot draws in" (fun () ->
        (* Regression: the 400 pilot draws used to be discarded.  A
           predicate that succeeds only during the pilot must still
           produce a positive estimate, because those hits are real
           draws of the same Bernoulli stream. *)
        let calls = ref 0 in
        let f _ = incr calls; !calls <= 400 in
        let p = Ch.estimate_fraction_adaptive (Rng.create 0) ~eps:0.2 ~delta:0.2 ~p_floor:0.01 f in
        Alcotest.(check bool)
          (Printf.sprintf "pilot hits kept (got %g)" p)
          true (p > 0.0);
        (* The main phase budget is also net of the pilot: with p_hat = 1
           the bound asks for few hundred draws total, not pilot + bound. *)
        let total = !calls in
        let bound =
          400 + Stdlib.max 0 (Ch.samples_for_ratio ~eps:0.2 ~delta:0.1 ~p_lower:0.5 - 400)
        in
        Alcotest.(check int) "pilot counts toward the budget" bound total);
    t "adaptive estimator honours a sub-pilot draw cap" (fun () ->
        (* Regression: with max_samples below the 400-draw pilot, the
           unclamped pilot alone used to overspend the cap. *)
        let calls = ref 0 in
        let f r = incr calls; Rng.float r < 0.5 in
        let p =
          Ch.estimate_fraction_adaptive (Rng.create 3) ~eps:0.1 ~delta:0.1 ~p_floor:0.01
            ~max_samples:100 f
        in
        Alcotest.(check bool)
          (Printf.sprintf "spent %d of a 100-draw budget" !calls)
          true (!calls <= 100);
        Alcotest.(check bool) "estimate is sane" true (Float.abs (p -. 0.5) < 0.25));
    t "zero-hit pilot cannot overspend the cap either" (fun () ->
        let calls = ref 0 in
        let f _ = incr calls; false in
        let p =
          Ch.estimate_fraction_adaptive (Rng.create 4) ~eps:0.1 ~delta:0.1 ~p_floor:1e-6
            ~max_samples:500 f
        in
        (* pilot (400) + floor-based main phase, truncated to the cap *)
        Alcotest.(check int) "draws = max_samples" 500 !calls;
        Alcotest.(check (float 0.0)) "no hits means zero" 0.0 p);
  ]

let rounding_tests =
  [
    t "rounding centres and normalizes inscribed ball" (fun () ->
        let rng = Rng.create 10 in
        let elongated = P.box [| 0.; 0. |] [| 50.; 0.5 |] in
        match Ro.round rng elongated with
        | Some r ->
            Alcotest.(check bool) "r_inf ≈ 1" true (Float.abs (r.Ro.r_inf -. 1.0) < 0.05);
            Alcotest.(check bool) "aspect much improved" true (Ro.aspect_ratio r < 10.0)
        | None -> Alcotest.fail "expected rounding");
    t "empty body" (fun () ->
        let empty = P.make ~dim:1 [| [| 1. |]; [| -1. |] |] [| -1.; -1. |] in
        Alcotest.(check bool) "none" true (Option.is_none (Ro.round (Rng.create 0) empty)));
    t "unbounded body" (fun () ->
        let hs = P.make ~dim:2 [| [| 1.; 0. |] |] [| 1. |] in
        Alcotest.(check bool) "none" true (Option.is_none (Ro.round (Rng.create 0) hs)));
    t "volume scale consistency" (fun () ->
        let rng = Rng.create 11 in
        let b = P.box [| 0.; 0. |] [| 4.; 1. |] in
        match Ro.round rng b with
        | Some r ->
            (* vol(rounded) = vol(b) * scale; check via exact rounded-volume
               of the box being preserved through the affine identity *)
            let scale = Affine.volume_scale r.Ro.transform in
            Alcotest.(check bool) "scale positive" true (scale > 0.0)
        | None -> Alcotest.fail "expected rounding");
  ]

let volume_tests =
  [
    t "ball volume closed forms" (fun () ->
        Alcotest.(check (float 1e-12)) "V1" 2.0 (Vol.ball_volume ~dim:1 ~radius:1.0);
        Alcotest.(check (float 1e-12)) "V2" Float.pi (Vol.ball_volume ~dim:2 ~radius:1.0);
        Alcotest.(check (float 1e-12)) "V3" (4.0 *. Float.pi /. 3.0) (Vol.ball_volume ~dim:3 ~radius:1.0);
        Alcotest.(check (float 1e-12)) "scaling" (Float.pi *. 4.0) (Vol.ball_volume ~dim:2 ~radius:2.0));
    ts "estimates known volumes within 10%" (fun () ->
        let rng = Rng.create 12 in
        List.iter
          (fun (name, poly, truth) ->
            match Vol.estimate rng ~budget:(Vol.Practical 2500) poly with
            | Some r ->
                let rel = Float.abs (r.Vol.volume -. truth) /. truth in
                Alcotest.(check bool) (Printf.sprintf "%s rel=%.3f" name rel) true (rel < 0.10)
            | None -> Alcotest.fail (name ^ ": estimation failed"))
          [
            ("cube2", P.unit_cube 2, 1.0);
            ("cube4", P.unit_cube 4, 1.0);
            ("simplex3", P.simplex 3, 1.0 /. 6.0);
            ("elongated", P.box [| 0.; 0. |] [| 100.; 0.01 |], 1.0);
          ]);
    ts "grid-walk sampler variant also works" (fun () ->
        let rng = Rng.create 13 in
        match Vol.estimate rng ~sampler:Vol.Grid_walk ~budget:(Vol.Practical 1200) ~walk_steps:400 (P.unit_cube 2) with
        | Some r -> Alcotest.(check bool) "close" true (Float.abs (r.Vol.volume -. 1.0) < 0.2)
        | None -> Alcotest.fail "estimation failed");
    ts "differential: DFK estimate vs exact Lasserre on random 2D/3D polytopes" (fun () ->
        let module VE = Scdb_polytope.Volume_exact in
        let rng = Rng.create 77 in
        let q = Rational.of_int in
        let checked = ref 0 in
        while !checked < 6 do
          let d = 2 + Rng.int rng 2 in
          (* random bounded tuple: cube ∩ random halfplanes *)
          let atoms = ref (List.concat (Relation.tuples (Relation.cube d (q 2)))) in
          for _ = 1 to d + 2 do
            let te =
              Term.make
                (List.init d (fun i -> (i, q (Rng.int rng 7 - 3))))
                (q (-1 - Rng.int rng 3))
            in
            atoms := Atom.make te Atom.Le :: !atoms
          done;
          let rel = Relation.make ~dim:d [ !atoms ] in
          let truth = Rational.to_float (VE.volume_relation rel) in
          if truth > 0.5 then begin
            incr checked;
            let poly = Scdb_polytope.Polytope.of_tuple ~dim:d (List.hd (Relation.tuples rel)) in
            match Vol.estimate rng ~budget:(Vol.Practical 2500) poly with
            | Some r ->
                let rel_err = Float.abs (r.Vol.volume -. truth) /. truth in
                Alcotest.(check bool)
                  (Printf.sprintf "d=%d truth=%.3f est=%.3f" d truth r.Vol.volume)
                  true (rel_err < 0.15)
            | None -> Alcotest.fail "estimation failed on non-empty body"
          end
        done);
    t "empty polytope gives none" (fun () ->
        let empty = P.make ~dim:2 [| [| 1.; 0. |]; [| -1.; 0. |] |] [| -1.; -1. |] in
        Alcotest.(check bool) "none" true (Option.is_none (Vol.estimate (Rng.create 0) empty)));
    t "dimension zero" (fun () ->
        match Vol.estimate (Rng.create 0) (P.make ~dim:0 [||] [||]) with
        | Some r -> Alcotest.(check (float 0.0)) "unit" 1.0 r.Vol.volume
        | None -> Alcotest.fail "expected trivial estimate");
  ]

let oracle_body_tests =
  let module OB = Scdb_sampling.Oracle_body in
  [
    t "ellipsoid construction and membership" (fun () ->
        match OB.ellipsoid [| [| 1.0; 0.0 |]; [| 0.0; 4.0 |] |] with
        | None -> Alcotest.fail "expected body"
        | Some body ->
            Alcotest.(check bool) "inside" true (body.OB.mem [| 0.9; 0.0 |]);
            Alcotest.(check bool) "outside" false (body.OB.mem [| 0.0; 0.9 |]);
            Alcotest.(check bool) "inner <= outer" true (snd body.OB.inner <= body.OB.outer));
    t "non-PD matrix rejected" (fun () ->
        Alcotest.(check bool) "none" true
          (Option.is_none (OB.ellipsoid [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |])));
    t "oracle chord matches analytic ball chord" (fun () ->
        match OB.ellipsoid (Mat.identity 2) with
        | None -> Alcotest.fail "expected body"
        | Some body -> (
            match OB.chord body [| 0.0; 0.0 |] [| 1.0; 0.0 |] with
            | Some (lo, hi) ->
                Alcotest.(check (float 1e-4)) "lo" (-1.0) lo;
                Alcotest.(check (float 1e-4)) "hi" 1.0 hi
            | None -> Alcotest.fail "expected chord"));
    ts "samples stay inside the ellipsoid" (fun () ->
        let rng = Rng.create 21 in
        let body = Option.get (OB.ellipsoid [| [| 1.0; 0.5 |]; [| 0.5; 2.0 |] |]) in
        let start = ref (Vec.create 2) in
        for _ = 1 to 300 do
          let p = OB.sample rng body ~start:!start ~steps:20 in
          start := p;
          Alcotest.(check bool) "member" true (body.OB.mem p)
        done);
    ts "ellipsoid volume matches closed form (sec 5 extension)" (fun () ->
        let rng = Rng.create 22 in
        (* vol{xᵀAx<=1} = V_ball(d) / sqrt(det A) *)
        let a = [| [| 1.0; 0.0 |]; [| 0.0; 4.0 |] |] in
        let truth = Vol.ball_volume ~dim:2 ~radius:1.0 /. 2.0 in
        let body = Option.get (OB.ellipsoid a) in
        let est = OB.estimate_volume rng ~samples_per_phase:2000 body in
        Alcotest.(check bool)
          (Printf.sprintf "est=%.4f truth=%.4f" est truth)
          true
          (Float.abs (est -. truth) /. truth < 0.12));
  ]


let ball_walk_tests =
  let module BW = Scdb_sampling.Ball_walk in
  [
    t "ball walk stays inside" (fun () ->
        let rng = Rng.create 30 in
        let c = P.unit_cube 3 in
        let p = BW.sample_polytope rng c ~start:[| 0.5; 0.5; 0.5 |] ~steps:200 () in
        Alcotest.(check bool) "inside" true (P.mem c p));
    t "start outside rejected" (fun () ->
        let rng = Rng.create 31 in
        try
          ignore (BW.walk rng ~mem:(fun _ -> false) ~start:[| 0.0 |] ~steps:1 ~radius:0.1);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "acceptance rate reported" (fun () ->
        let rng = Rng.create 32 in
        let c = P.unit_cube 2 in
        let _, stats = BW.walk rng ~mem:(fun x -> P.mem c x) ~start:[| 0.5; 0.5 |] ~steps:500 ~radius:0.2 in
        Alcotest.(check int) "steps" 500 stats.BW.steps;
        Alcotest.(check bool) "some accepted" true (stats.BW.accepted > 250));
    ts "ball walk empirical mean near centre" (fun () ->
        let rng = Rng.create 33 in
        let c = P.unit_cube 2 in
        let start = ref [| 0.1; 0.1 |] in
        let sum = ref 0.0 in
        let n = 2000 in
        for _ = 1 to n do
          let p = BW.sample_polytope rng c ~start:!start ~steps:80 () in
          start := p;
          sum := !sum +. p.(0)
        done;
        Alcotest.(check (float 0.04)) "mean" 0.5 (!sum /. float_of_int n));
  ]

let stats_tests =
  let module S = Scdb_sampling.Stats in
  [
    t "welford mean and variance" (fun () ->
        let acc = S.create () in
        List.iter (S.add acc) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
        Alcotest.(check (float 1e-9)) "mean" 5.0 (S.mean acc);
        Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (S.variance acc);
        Alcotest.(check int) "count" 8 (S.count acc));
    t "empty accumulator raises" (fun () ->
        try
          ignore (S.mean (S.create ()));
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "confidence interval contains the mean and shrinks" (fun () ->
        let rng = Rng.create 34 in
        let small = S.create () and large = S.create () in
        for i = 1 to 10_000 do
          let x = Rng.float rng in
          if i <= 100 then S.add small x;
          S.add large x
        done;
        let lo1, hi1 = S.confidence_interval small ~confidence:0.95 in
        let lo2, hi2 = S.confidence_interval large ~confidence:0.95 in
        Alcotest.(check bool) "contains" true (lo2 <= 0.5 && 0.5 <= hi2);
        Alcotest.(check bool) "shrinks" true (hi2 -. lo2 < hi1 -. lo1));
    t "hoeffding radius formula" (fun () ->
        let r = S.hoeffding_radius ~n:200 ~range:1.0 ~delta:0.05 in
        Alcotest.(check (float 1e-9)) "value" (sqrt (log 40.0 /. 400.0)) r);
    t "quantile nearest rank" (fun () ->
        let data = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
        Alcotest.(check (float 0.0)) "median" 3.0 (S.quantile data 0.5);
        Alcotest.(check (float 0.0)) "min" 1.0 (S.quantile data 0.0);
        Alcotest.(check (float 0.0)) "max" 5.0 (S.quantile data 1.0));
    t "merge equals sequential" (fun () ->
        let a = S.create () and b = S.create () and all = S.create () in
        List.iteri
          (fun i x ->
            S.add (if i mod 2 = 0 then a else b) x;
            S.add all x)
          [ 1.0; 5.0; 2.0; 8.0; 3.0; 1.5; 9.0 ];
        let m = S.merge a b in
        Alcotest.(check (float 1e-9)) "mean" (S.mean all) (S.mean m);
        Alcotest.(check (float 1e-9)) "variance" (S.variance all) (S.variance m));
  ]


let mixing_tests =
  let module Mix = Scdb_sampling.Mixing in
  [
    t "iid series has tau near 1" (fun () ->
        let rng = Rng.create 40 in
        let xs = Array.init 5000 (fun _ -> Rng.float rng) in
        let tau = Mix.integrated_autocorrelation_time xs in
        Alcotest.(check bool) (Printf.sprintf "tau=%.2f" tau) true (tau < 1.4));
    t "AR(1) series has tau near (1+rho)/(1-rho)" (fun () ->
        let rng = Rng.create 41 in
        let rho = 0.9 in
        let xs = Array.make 50_000 0.0 in
        for i = 1 to Array.length xs - 1 do
          xs.(i) <- (rho *. xs.(i - 1)) +. Rng.gaussian rng
        done;
        let tau = Mix.integrated_autocorrelation_time xs in
        (* theory: tau = (1+rho)/(1-rho) = 19 *)
        Alcotest.(check bool) (Printf.sprintf "tau=%.1f" tau) true (tau > 10.0 && tau < 30.0));
    t "constant series" (fun () ->
        let xs = Array.make 100 3.14 in
        Alcotest.(check (float 0.0)) "acf" 0.0 (Mix.autocorrelation xs ~lag:1);
        Alcotest.(check (float 0.0)) "tau" 1.0 (Mix.integrated_autocorrelation_time xs));
    t "ess at most n" (fun () ->
        let rng = Rng.create 42 in
        let xs = Array.init 1000 (fun _ -> Rng.float rng) in
        Alcotest.(check bool) "bounded" true (Mix.effective_sample_size xs <= 1000.0));
    t "trace records thinned values" (fun () ->
        let rng = Rng.create 43 in
        let series =
          Mix.trace rng ~steps:100 ~thin:10 ~init:[| 0.0 |]
            ~next:(fun _ x -> [| x.(0) +. 1.0 |])
            ~f:(fun x -> x.(0))
        in
        Alcotest.(check int) "length" 10 (Array.length series);
        Alcotest.(check (float 0.0)) "first" 10.0 series.(0);
        Alcotest.(check (float 0.0)) "last" 100.0 series.(9));
  ]

(* Equivalence and allocation discipline of the incremental kernels:
   the cached-product fast paths must walk the same trajectories as the
   naive oracle implementations they replace (same rng stream, same
   accept/reject decisions), and their inner loops must not allocate. *)
let kernel_tests =
  [
    t "incremental hit-and-run follows the naive trajectory" (fun () ->
        (* Same seed on both sides: the kernels consume identical rng
           streams, so positions agree up to accumulated rounding of the
           cached products. *)
        let rng0 = Rng.create 4242 in
        let poly = ref (P.cube 3 1.0) in
        for _ = 1 to 10 do
          poly := P.add_halfspace !poly (Rng.unit_vector rng0 3) 0.8
        done;
        let poly = !poly in
        let start = Vec.create 3 in
        List.iter
          (fun seed ->
            let naive =
              HR.sample (Rng.create seed) ~chord:(HR.polytope_chord poly) ~start ~steps:128
            in
            let incr = HR.sample_polytope (Rng.create seed) poly ~start ~steps:128 in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d" seed)
              true
              (Vec.equal_eps 1e-6 naive incr))
          [ 42; 1000; 31337 ]);
    t "incremental lattice walk matches the oracle walk exactly" (fun () ->
        (* Dyadic grid step and ±1 cube bounds keep every product and
           cached sum exact in binary floating point, so the incremental
           kernel's accept/reject decisions — and hence the trajectory —
           are bit-identical to the membership-oracle walk. *)
        let poly = P.cube 3 1.0 in
        let grid = G.make ~step:0.25 ~dim:3 in
        let start = Vec.create 3 in
        List.iter
          (fun seed ->
            let naive =
              W.sample (Rng.create seed) ~grid ~mem:(fun x -> P.mem poly x) ~start ~steps:600
            in
            let incr = W.sample_polytope (Rng.create seed) ~grid poly ~start ~steps:600 in
            Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (naive = incr))
          [ 7; 99; 20060101 ]);
    t "chord/advance inner loop does not allocate" (fun () ->
        let rng = Rng.create 5 in
        let poly = ref (P.cube 6 1.0) in
        for _ = 1 to 20 do
          poly := P.add_halfspace !poly (Rng.unit_vector rng 6) 0.8
        done;
        let cur = P.Kernel.make !poly (Vec.create 6) in
        let dir = Rng.unit_vector rng 6 in
        let iters = 10_000 in
        (* Warm-up pass so one-time setup is off the books. *)
        for _ = 1 to 100 do
          ignore (P.Kernel.chord cur dir);
          P.Kernel.advance cur dir 1e-6
        done;
        let w0 = Gc.minor_words () in
        for _ = 1 to iters do
          ignore (P.Kernel.chord cur dir);
          P.Kernel.advance cur dir 1e-6
        done;
        let dw = Gc.minor_words () -. w0 in
        Alcotest.(check bool)
          (Printf.sprintf "minor words per step = %.4f" (dw /. float_of_int iters))
          true
          (dw < 256.0));
    t "try_set_coord inner loop does not allocate" (fun () ->
        let poly = P.cube 4 1.0 in
        let cur = P.Kernel.make poly (Vec.create 4) in
        let iters = 10_000 in
        for _ = 1 to 100 do
          ignore (P.Kernel.try_set_coord cur 0 0.25);
          ignore (P.Kernel.try_set_coord cur 0 0.0)
        done;
        let w0 = Gc.minor_words () in
        for _ = 1 to iters do
          ignore (P.Kernel.try_set_coord cur 0 0.25);
          ignore (P.Kernel.try_set_coord cur 0 0.0)
        done;
        let dw = Gc.minor_words () -. w0 in
        Alcotest.(check bool)
          (Printf.sprintf "minor words per move = %.4f" (dw /. float_of_int iters))
          true
          (dw < 256.0));
    t "hit-and-run keeps sampling uniformly (kernel path)" (fun () ->
        (* Distributional sanity on the rewritten sampler: mean of many
           short runs on the centred cube stays near the origin. *)
        let rng = Rng.create 8 in
        let poly = P.cube 2 1.0 in
        let n = 400 in
        let sx = ref 0.0 and sy = ref 0.0 in
        for _ = 1 to n do
          let p = HR.sample_polytope rng poly ~start:(Vec.create 2) ~steps:40 in
          sx := !sx +. p.(0);
          sy := !sy +. p.(1)
        done;
        Alcotest.(check (float 0.1)) "mean x" 0.0 (!sx /. float_of_int n);
        Alcotest.(check (float 0.1)) "mean y" 0.0 (!sy /. float_of_int n));
  ]

(* The batched structure-of-arrays kernel: per-chain trajectories must
   be bit-identical to the single-chain incremental kernel (Compat
   direction mode), and the batched chord machinery must not allocate
   per step. *)
let batch_tests =
  let module BW = Scdb_sampling.Ball_walk in
  let fixture_poly seed dim =
    let rng0 = Rng.create seed in
    let poly = ref (P.cube dim 1.0) in
    for _ = 1 to 12 do
      poly := P.add_halfspace !poly (Rng.unit_vector rng0 dim) 0.8
    done;
    !poly
  in
  [
    t "K=1 batched hit-and-run is bit-identical to the incremental kernel" (fun () ->
        (* 600 steps crosses the refresh_interval=256 cache refresh
           twice, so the exact-recomputation cadence is covered too. *)
        let poly = fixture_poly 4242 3 in
        let start = Vec.create 3 in
        List.iter
          (fun seed ->
            let incr = HR.sample_polytope (Rng.create seed) poly ~start ~steps:600 in
            let batch =
              HR.sample_polytope_batch [| Rng.create seed |] poly ~starts:[| start |]
                ~steps:600
            in
            Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (incr = batch.(0)))
          [ 42; 1000; 31337 ]);
    t "K=4 Compat chains are bit-identical to sequential single-chain runs" (fun () ->
        let poly = fixture_poly 777 4 in
        let seeds = [| 11; 22; 33; 44 |] in
        let starts = Array.make 4 (Vec.create 4) in
        let sequential =
          Array.map
            (fun seed -> HR.sample_polytope (Rng.create seed) poly ~start:(Vec.create 4) ~steps:300)
            seeds
        in
        let rngs = Array.map Rng.create seeds in
        let batch =
          HR.sample_polytope_batch ~dir_mode:HR.Compat rngs poly ~starts ~steps:300
        in
        Array.iteri
          (fun c expected ->
            Alcotest.(check bool) (Printf.sprintf "chain %d" c) true (expected = batch.(c)))
          sequential);
    t "K=1 batched lattice walk is bit-identical to the incremental kernel" (fun () ->
        let poly = P.cube 3 1.0 in
        let grid = G.make ~step:0.25 ~dim:3 in
        let start = Vec.create 3 in
        List.iter
          (fun seed ->
            let incr = W.sample_polytope (Rng.create seed) ~grid poly ~start ~steps:600 in
            let batch =
              W.sample_polytope_batch [| Rng.create seed |] ~grid poly ~starts:[| start |]
                ~steps:600
            in
            Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true (incr = batch.(0)))
          [ 7; 99; 20060101 ]);
    t "Fast direction mode stays inside the body" (fun () ->
        let poly = fixture_poly 9001 4 in
        let starts = Array.init 8 (fun _ -> Vec.create 4) in
        let rng = Rng.create 555 in
        let rngs = Array.init 8 (fun _ -> Rng.split rng) in
        let pts = HR.sample_polytope_batch ~dir_mode:HR.Fast rngs poly ~starts ~steps:80 in
        Array.iteri
          (fun c p ->
            Alcotest.(check bool)
              (Printf.sprintf "chain %d inside" c)
              true
              (P.mem ~slack:1e-9 poly p))
          pts);
    t "batched ball walk moves and stays inside" (fun () ->
        let poly = P.cube 3 1.0 in
        let starts = Array.init 4 (fun _ -> Vec.create 3) in
        let rng = Rng.create 31 in
        let rngs = Array.init 4 (fun _ -> Rng.split rng) in
        let pts = BW.sample_polytope_batch rngs poly ~starts ~steps:200 () in
        Array.iteri
          (fun c p ->
            Alcotest.(check bool)
              (Printf.sprintf "chain %d inside" c)
              true
              (P.mem ~slack:1e-9 poly p);
            Alcotest.(check bool)
              (Printf.sprintf "chain %d moved" c)
              true
              (Vec.norm2 p > 0.0))
          pts);
    t "batched chord_all/advance inner loop does not allocate" (fun () ->
        let poly = fixture_poly 5 6 in
        let k = 4 in
        let starts = Array.init k (fun _ -> Vec.create 6) in
        let b = P.Kernel.Batch.make poly starts in
        let rng = Rng.create 6 in
        let dirs = Array.init k (fun _ -> Rng.unit_vector rng 6) in
        Array.iteri (fun c dir -> P.Kernel.Batch.set_dir b c dir) dirs;
        let iters = 10_000 in
        for _ = 1 to 100 do
          P.Kernel.Batch.chord_all b;
          for c = 0 to k - 1 do
            P.Kernel.Batch.advance b c 1e-6
          done
        done;
        let w0 = Gc.minor_words () in
        for _ = 1 to iters do
          P.Kernel.Batch.chord_all b;
          for c = 0 to k - 1 do
            P.Kernel.Batch.advance b c 1e-6
          done
        done;
        let dw = Gc.minor_words () -. w0 in
        Alcotest.(check bool)
          (Printf.sprintf "minor words per batched step = %.4f" (dw /. float_of_int iters))
          true
          (dw < 256.0));
    t "batched try_set_coord and propose_all do not allocate" (fun () ->
        let poly = P.cube 4 1.0 in
        let k = 3 in
        let b = P.Kernel.Batch.make poly (Array.init k (fun _ -> Vec.create 4)) in
        let delta = [| 0.05; -0.05; 0.05; -0.05 |] in
        for c = 0 to k - 1 do
          P.Kernel.Batch.set_dir b c delta
        done;
        let iters = 10_000 in
        for _ = 1 to 100 do
          P.Kernel.Batch.propose_all b;
          for c = 0 to k - 1 do
            ignore (P.Kernel.Batch.try_set_coord b c 0 0.25);
            ignore (P.Kernel.Batch.try_set_coord b c 0 0.0)
          done
        done;
        let w0 = Gc.minor_words () in
        for _ = 1 to iters do
          P.Kernel.Batch.propose_all b;
          for c = 0 to k - 1 do
            ignore (P.Kernel.Batch.try_set_coord b c 0 0.25);
            ignore (P.Kernel.Batch.try_set_coord b c 0 0.0)
          done
        done;
        let dw = Gc.minor_words () -. w0 in
        Alcotest.(check bool)
          (Printf.sprintf "minor words per batched move = %.4f" (dw /. float_of_int iters))
          true
          (dw < 256.0));
  ]

let suites =
  [
    ("sampling.grid", grid_tests);
    ("sampling.walk", walk_tests);
    ("sampling.kernel", kernel_tests);
    ("sampling.batch", batch_tests);
    ("sampling.hit_and_run", hit_and_run_tests);
    ("sampling.rejection", rejection_tests);
    ("sampling.chernoff", chernoff_tests);
    ("sampling.rounding", rounding_tests);
    ("sampling.volume", volume_tests);
    ("sampling.oracle_body", oracle_body_tests);
    ("sampling.ball_walk", ball_walk_tests);
    ("sampling.stats", stats_tests);
    ("sampling.mixing", mixing_tests);
  ]
