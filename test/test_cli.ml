(* End-to-end exit-code tests for the spatialdb binary.

   The convention under test (see bin/spatialdb.ml): 2 for usage/value
   errors with the valid choices listed, 1 for runtime errors (parse
   failures, empty relations), cmdliner's 124 for malformed command
   lines, 0 on success.  The binary is a declared dune dependency of
   the test runner, sitting at ../bin/spatialdb.exe relative to it. *)

let t name f = Alcotest.test_case name `Quick f

let binary =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "spatialdb.exe")

let run args = Sys.command (Filename.quote binary ^ " " ^ args ^ " >/dev/null 2>&1")

let fig1 = "-v x,y -f \"x >= 0 /\\ y >= 0 /\\ x + y <= 1\""

let check name expected args = Alcotest.(check int) name expected (run args)

let success_tests =
  [
    t "binary exists where the test expects it" (fun () ->
        Alcotest.(check bool) binary true (Sys.file_exists binary));
    t "explain exits 0 (tree and json)" (fun () ->
        check "tree" 0 ("explain " ^ fig1);
        check "json" 0 ("explain " ^ fig1 ^ " --format json");
        check "volume task" 0 ("explain " ^ fig1 ^ " --task volume"));
    t "volume --mode exact exits 0" (fun () -> check "exact" 0 ("volume " ^ fig1 ^ " --mode exact"));
  ]

let usage_tests =
  [
    t "unknown volume mode exits 2" (fun () ->
        check "mode" 2 ("volume " ^ fig1 ^ " --mode bogus"));
    t "unknown sample method exits 2" (fun () ->
        check "method" 2 ("sample " ^ fig1 ^ " --method bogus"));
    t "unknown explain format/task exit 2" (fun () ->
        check "format" 2 ("explain " ^ fig1 ^ " --format bogus");
        check "task" 2 ("explain " ^ fig1 ^ " --task bogus"));
    t "unknown report format exits 2" (fun () ->
        check "format" 2 ("report " ^ fig1 ^ " --format bogus"));
    t "unknown log level exits 2" (fun () ->
        check "level" 2 ("sample " ^ fig1 ^ " -n 1 --log-level bogus"));
    t "unknown profile mode exits 2" (fun () ->
        check "sample" 2 ("sample " ^ fig1 ^ " -n 1 --engine vm --profile=bogus");
        check "profile cmd" 2 ("profile " ^ fig1 ^ " -n 1 --mode bogus"));
    t "profile rejects the interpreter engine" (fun () ->
        check "profile cmd" 2 ("profile " ^ fig1 ^ " -n 1 --engine interp"));
  ]

let cmdline_tests =
  [
    t "unknown flag exits 124" (fun () -> check "flag" 124 ("explain " ^ fig1 ^ " --bogus-flag"));
    t "unknown subcommand exits 124" (fun () -> check "subcommand" 124 "frobnicate");
    t "missing required arguments exit 124" (fun () -> check "no args" 124 "sample");
  ]

let runtime_tests =
  [
    t "formula parse error exits 1" (fun () ->
        check "parse" 1 "explain -v x -f \"x >= nonsense\"");
    t "empty relation exits 1" (fun () ->
        check "empty" 1 "sample -v x -f \"x >= 1 /\\ x <= 0\" -n 1");
    t "sample --profile under interp exits 1" (fun () ->
        check "interp" 1 ("sample " ^ fig1 ^ " -n 1 --profile"));
  ]

let profile_tests =
  [
    t "profile exits 0 and writes a document" (fun () ->
        let out = Filename.temp_file "spatialdb_profile" ".json" in
        check "run" 0 ("profile " ^ fig1 ^ " -n 2 --out " ^ Filename.quote out);
        let ic = open_in out in
        let len = in_channel_length ic in
        close_in ic;
        Alcotest.(check bool) "document non-empty" true (len > 0);
        Sys.remove out);
    t "sample --profile exits 0 under both compiled engines" (fun () ->
        check "vm" 0 ("sample " ^ fig1 ^ " -n 2 --engine vm --profile=counting");
        check "vm-opt" 0 ("sample " ^ fig1 ^ " -n 2 --engine vm-opt --profile"));
    t "report --engine vm-opt exits 0, interp rejects bogus engine" (fun () ->
        check "vm-opt" 0 ("report " ^ fig1 ^ " -n 2 --engine vm-opt -o /dev/null");
        check "bogus" 2 ("report " ^ fig1 ^ " -n 2 --engine bogus"));
  ]

let suites =
  [
    ("cli.success", success_tests);
    ("cli.usage", usage_tests);
    ("cli.cmdline", cmdline_tests);
    ("cli.runtime", runtime_tests);
    ("cli.profile", profile_tests);
  ]
