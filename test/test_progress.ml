(* Tests for the progress bus (Scdb_progress): inclusive accrual onto
   the node stack, the budget-overrun watchdog (log warning + telemetry
   counter, once per node), and the percent/ETA snapshot API. *)

module Progress = Scdb_progress.Progress
module Tel = Scdb_telemetry.Telemetry
module Log = Scdb_log.Log

let t name f = Alcotest.test_case name `Quick f

(* Arm the bus (and capture log/telemetry) for one test, restoring the
   global state after — the bus is process-global. *)
let with_bus ?overrun_factor rows f =
  let tel_was = Tel.enabled () in
  Tel.set_enabled true;
  Tel.reset ();
  Log.set_enabled true;
  Log.set_stderr false;
  Log.set_level Log.Warn;
  Log.reset ();
  Progress.start ?overrun_factor ~rows ();
  Fun.protect
    ~finally:(fun () ->
      Progress.stop ();
      Log.set_enabled false;
      Log.set_stderr true;
      Tel.set_enabled tel_was)
    f

let watchdog_tests =
  [
    t "overrun fires on an artificially starved prediction" (fun () ->
        (* Budget says 10 work units; the node spends 100.  With the
           default factor 4 the watchdog must trip. *)
        with_bus [| (0, "root", 10.0) |] (fun () ->
            Progress.with_node 0 (fun () -> Progress.add_steps 100);
            Alcotest.(check int) "overrun count" 1 (Progress.overrun_count ());
            Alcotest.(check (option int))
              "telemetry counter ticked" (Some 1)
              (Tel.counter_value "progress.overruns");
            Alcotest.(check bool) "warn logged" true (Log.warn_count () >= 1);
            let logged = String.concat "\n" (Log.tail ()) in
            Alcotest.(check bool) "event name in ring" true
              (let needle = "plan.budget_overrun" in
               let n = String.length needle and l = String.length logged in
               let rec scan i = i + n <= l && (String.sub logged i n = needle || scan (i + 1)) in
               scan 0)));
    t "overrun fires once per node, not per accrual" (fun () ->
        with_bus [| (0, "root", 10.0) |] (fun () ->
            Progress.with_node 0 (fun () ->
                Progress.add_steps 100;
                Progress.add_trials 100;
                Progress.add_steps 100);
            Alcotest.(check int) "still one overrun" 1 (Progress.overrun_count ())));
    t "factor is respected and zero-budget nodes never flag" (fun () ->
        with_bus ~overrun_factor:50.0
          [| (0, "root", 10.0); (1, "free", 0.0) |]
          (fun () ->
            Progress.with_node 0 (fun () -> Progress.add_steps 100);
            Progress.with_node 1 (fun () -> Progress.add_steps 1_000_000);
            Alcotest.(check int) "under 50x, zero budget ignored" 0
              (Progress.overrun_count ())));
  ]

let accrual_tests =
  [
    t "accrual is inclusive over the node stack" (fun () ->
        with_bus [| (0, "union", 100.0); (1, "leaf", 50.0) |] (fun () ->
            Progress.with_node 0 (fun () ->
                Progress.with_node 1 (fun () -> Progress.add_steps 7);
                Progress.add_trials 3);
            Alcotest.(check (float 0.0)) "leaf work" 7.0 (Progress.actual_work 1);
            Alcotest.(check (float 0.0)) "root work (inclusive)" 10.0 (Progress.actual_work 0)));
    t "work outside any with_node lands on the root" (fun () ->
        with_bus [| (0, "root", 10.0); (1, "leaf", 5.0) |] (fun () ->
            Progress.add_steps 4;
            Alcotest.(check (float 0.0)) "root" 4.0 (Progress.actual_work 0);
            Alcotest.(check (float 0.0)) "leaf untouched" 0.0 (Progress.actual_work 1)));
    t "draws and mems are informational, not work" (fun () ->
        with_bus [| (0, "root", 10.0) |] (fun () ->
            Progress.with_node 0 (fun () ->
                Progress.add_draws 100;
                Progress.add_mems 100);
            Alcotest.(check (float 0.0)) "work is zero" 0.0 (Progress.actual_work 0);
            let r = (Progress.rows ()).(0) in
            Alcotest.(check (float 0.0)) "draws recorded" 100.0 r.Progress.draws;
            Alcotest.(check (float 0.0)) "mems recorded" 100.0 r.Progress.mems));
    t "accrual is a no-op when the bus is inactive" (fun () ->
        Alcotest.(check bool) "inactive" false (Progress.active ());
        Progress.add_steps 5;
        Progress.with_node 3 (fun () -> Progress.add_trials 5));
  ]

let snapshot_tests =
  [
    t "eta appears once work lands and shrinks toward completion" (fun () ->
        with_bus [| (0, "root", 100.0) |] (fun () ->
            Alcotest.(check bool) "no eta before work" true (Progress.eta () = None);
            Progress.with_node 0 (fun () -> Progress.add_steps 50);
            match Progress.eta () with
            | None -> Alcotest.fail "eta missing after work"
            | Some e -> Alcotest.(check bool) "finite, non-negative" true
                (Float.is_finite e && e >= 0.0)));
    t "render_line mentions every node" (fun () ->
        with_bus [| (0, "union", 100.0); (1, "dfk", 50.0) |] (fun () ->
            Progress.with_node 0 (fun () -> Progress.add_steps 10);
            let line = Progress.render_line () in
            Alcotest.(check bool) "non-empty" true (String.length line > 0);
            List.iter
              (fun needle ->
                let n = String.length needle and l = String.length line in
                let rec scan i = i + n <= l && (String.sub line i n = needle || scan (i + 1)) in
                Alcotest.(check bool) (needle ^ " present") true (scan 0))
              [ "union"; "dfk"; "%" ]));
    t "actuals survive stop until the next start" (fun () ->
        with_bus [| (0, "root", 10.0) |] (fun () ->
            Progress.with_node 0 (fun () -> Progress.add_steps 6));
        (* with_bus's finally already stopped the bus. *)
        Alcotest.(check bool) "inactive" false (Progress.active ());
        Alcotest.(check (float 0.0)) "actual readable" 6.0 (Progress.actual_work 0);
        Progress.start ~rows:[| (0, "root", 1.0) |] ();
        Alcotest.(check (float 0.0)) "reset by start" 0.0 (Progress.actual_work 0);
        Progress.stop ());
  ]

let suites =
  [
    ("progress.watchdog", watchdog_tests);
    ("progress.accrual", accrual_tests);
    ("progress.snapshot", snapshot_tests);
  ]
