(* Tests for the flight recorder: bit-exact record/replay on the
   Figure 1 triangle, hex-float round-tripping, divergence reporting on
   corrupted records, and RNG provenance capture. *)

module Flight = Scdb_gis.Flight
module Flightrec = Scdb_log.Flightrec
module Rng = Scdb_rng.Rng

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let fig1 = "x >= 0 /\\ y >= 0 /\\ x + y <= 1"

let args =
  {
    Flight.vars = [ "x"; "y" ];
    formula = fig1;
    n = 5;
    seed = 123;
    eps = 0.2;
    delta = 0.1;
    method_ = "walk";
    engine = "interp";
  }

let run_ok ?track a =
  match Flight.run ?track a with
  | Ok o -> o
  | Error m -> Alcotest.failf "Flight.run failed: %s" m

let record () =
  let o = run_ok ~track:true args in
  let r = Flight.to_flightrec args o in
  Rng.Provenance.set_tracking false;
  r

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  k = 0 || go 0

let tests =
  [
    ts "same seed yields a bit-identical stream" (fun () ->
        let a = run_ok args and b = run_ok args in
        match
          Flightrec.compare_samples ~recorded:a.Flight.points ~replayed:b.Flight.points
        with
        | Ok n -> Alcotest.(check int) "length" 5 n
        | Error m -> Alcotest.failf "streams diverged: %s" m);
    ts "record round-trips through JSON bit-exactly" (fun () ->
        let r = record () in
        match Flightrec.of_json (Flightrec.to_json r) with
        | Error m -> Alcotest.failf "re-parse failed: %s" m
        | Ok r' ->
            Alcotest.(check string) "command" r.Flightrec.command r'.Flightrec.command;
            Alcotest.(check int) "seed" r.Flightrec.seed r'.Flightrec.seed;
            Alcotest.(check (option string)) "formula" (Flightrec.arg r "formula")
              (Flightrec.arg r' "formula");
            Alcotest.(check int) "lineage nodes" (List.length r.Flightrec.lineage)
              (List.length r'.Flightrec.lineage);
            (match
               Flightrec.compare_samples ~recorded:r.Flightrec.samples
                 ~replayed:r'.Flightrec.samples
             with
            | Ok _ -> ()
            | Error m -> Alcotest.failf "samples changed in round-trip: %s" m));
    t "hex floats survive extreme values" (fun () ->
        let weird = [| 0.1; -0.0; 1e-300; Float.pi; 4.9e-324 |] in
        let r =
          {
            Flightrec.command = "sample";
            args = [];
            seed = 0;
            samples = [ weird ];
            lineage = [];
            telemetry = None;
            log_tail = [];
          }
        in
        match Flightrec.of_json (Flightrec.to_json r) with
        | Error m -> Alcotest.failf "re-parse failed: %s" m
        | Ok r' -> (
            match
              Flightrec.compare_samples ~recorded:r.Flightrec.samples
                ~replayed:r'.Flightrec.samples
            with
            | Ok _ -> ()
            | Error m -> Alcotest.failf "bit drift: %s" m));
    ts "replay reproduces the recorded stream" (fun () ->
        let r = record () in
        (match Flight.replay r with
        | Ok n -> Alcotest.(check int) "verified length" 5 n
        | Error m -> Alcotest.failf "replay failed: %s" m);
        Rng.Provenance.set_tracking false);
    ts "corrupted record diverges with the first differing draw" (fun () ->
        let r = record () in
        let samples =
          match r.Flightrec.samples with
          | p :: rest ->
              let p' = Array.copy p in
              p'.(0) <- Int64.float_of_bits (Int64.add (Int64.bits_of_float p.(0)) 1L);
              p' :: rest
          | [] -> Alcotest.fail "empty sample stream"
        in
        (match Flight.replay { r with Flightrec.samples } with
        | Ok _ -> Alcotest.fail "corrupted record replayed cleanly"
        | Error m ->
            Alcotest.(check bool)
              (Printf.sprintf "message names the divergence: %s" m)
              true
              (contains m "first divergence at sample 0, coordinate 0"));
        Rng.Provenance.set_tracking false);
    ts "provenance captures the root generator and its draws" (fun () ->
        let r = record () in
        match r.Flightrec.lineage with
        | [] -> Alcotest.fail "no lineage captured"
        | root :: _ ->
            Alcotest.(check int) "root id" 0 root.Rng.Provenance.id;
            Alcotest.(check int) "root parent" (-1) root.Rng.Provenance.parent;
            Alcotest.(check string) "root op" "create" root.Rng.Provenance.op;
            Alcotest.(check bool) "draws counted" true (root.Rng.Provenance.draws > 0));
    t "replay rejects records from other commands" (fun () ->
        let r =
          {
            Flightrec.command = "volume";
            args = [];
            seed = 1;
            samples = [];
            lineage = [];
            telemetry = None;
            log_tail = [];
          }
        in
        match Flight.replay r with
        | Ok _ -> Alcotest.fail "replayed a volume record"
        | Error m -> Alcotest.(check bool) "explains" true (contains m "only \"sample\""));
    ts "committed pre-batching record still replays bit-exactly" (fun () ->
        (* Fixture recorded by the incremental single-chain kernel
           before the batched SoA kernel landed: replay pins the K=1
           RNG stream and chord arithmetic across the refactor. *)
        (* The runner executes from the build root; the fixture sits
           next to the test executable (declared as a dune dep). *)
        let path =
          Filename.concat
            (Filename.dirname Sys.executable_name)
            (Filename.concat "fixtures" "incremental_k1.flightrec.json")
        in
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        match Flightrec.of_json text with
        | Error m -> Alcotest.failf "fixture did not parse: %s" m
        | Ok r -> (
            match Flight.replay r with
            | Ok n -> Alcotest.(check int) "samples reproduced" 6 n
            | Error m -> Alcotest.failf "fixture replay diverged: %s" m));
  ]

let suites = [ ("gis.flight", tests) ]
