(* Tests for the structured logging layer: schema, filtering, ring
   buffer, span correlation, the allocation-free disabled path, and the
   Prometheus exposition + atomic textfile emitter. *)

module Log = Scdb_log.Log
module Metrics = Scdb_log.Metrics_export
module Tel = Scdb_telemetry.Telemetry
module Trace = Scdb_trace.Trace
module J = Scdb_trace.Json_min

let t name f = Alcotest.test_case name `Quick f

(* Run [f] with logging enabled at [level], restoring all global log
   state afterwards so suites stay independent. *)
let with_log ?(level = Log.Debug) f =
  let was = Log.enabled () in
  Log.set_enabled true;
  Log.set_level level;
  Log.set_stderr false;
  Log.reset ();
  Fun.protect
    ~finally:(fun () ->
      Log.reset ();
      Log.set_ring_capacity 256;
      Log.set_enabled was)
    f

let last_event () =
  match List.rev (Log.tail ()) with
  | [] -> Alcotest.fail "log tail is empty"
  | line :: _ -> J.parse line

let member name doc =
  match J.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" name

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  k = 0 || go 0

let event_tests =
  [
    t "events carry the spatialdb-log/1 schema" (fun () ->
        with_log (fun () ->
            Log.info "test.hello" [ Log.str "who" "world"; Log.int "n" 3 ];
            let doc = last_event () in
            Alcotest.(check (option string)) "schema" (Some "spatialdb-log/1")
              (J.to_string (member "schema" doc));
            Alcotest.(check (option string)) "level" (Some "info")
              (J.to_string (member "level" doc));
            Alcotest.(check (option string)) "event" (Some "test.hello")
              (J.to_string (member "event" doc));
            let fields = member "fields" doc in
            Alcotest.(check (option string)) "str field" (Some "world")
              (J.to_string (member "who" fields));
            Alcotest.(check (option (float 0.0))) "int field" (Some 3.0)
              (J.to_float (member "n" fields))));
    t "seq strictly increases and ts is finite, non-decreasing" (fun () ->
        with_log (fun () ->
            for i = 1 to 8 do
              Log.info "test.tick" [ Log.int "i" i ]
            done;
            let last_seq = ref (-1) and last_ts = ref neg_infinity in
            List.iter
              (fun line ->
                let doc = J.parse line in
                let seq = int_of_float (Option.get (J.to_float (member "seq" doc))) in
                let ts = Option.get (J.to_float (member "ts" doc)) in
                if seq <= !last_seq then Alcotest.failf "seq %d after %d" seq !last_seq;
                if not (Float.is_finite ts) then Alcotest.fail "non-finite ts";
                if ts < !last_ts then Alcotest.fail "ts went backwards";
                last_seq := seq;
                last_ts := ts)
              (Log.tail ());
            Alcotest.(check int) "eight events" 8 (List.length (Log.tail ()))));
    t "level filter drops events below the threshold" (fun () ->
        with_log ~level:Log.Warn (fun () ->
            Log.debug "test.d" [];
            Log.info "test.i" [];
            Log.warn "test.w" [];
            Log.error "test.e" [];
            Alcotest.(check int) "two events kept" 2 (List.length (Log.tail ()));
            Alcotest.(check int) "warn counted" 1 (Log.warn_count ());
            Alcotest.(check int) "error counted" 1 (Log.error_count ())));
    t "non-finite float fields stay valid JSON" (fun () ->
        with_log (fun () ->
            Log.info "test.inf" [ Log.float "a" Float.infinity; Log.float "b" Float.nan ];
            let doc = last_event () in
            let fields = member "fields" doc in
            (* Clamped, not rendered as bare inf/nan (which would break
               the JSON contract validate_logs enforces). *)
            match (J.to_float (member "a" fields), J.to_float (member "b" fields)) with
            | Some a, Some b ->
                Alcotest.(check bool) "finite" true (Float.is_finite a && Float.is_finite b)
            | _ -> Alcotest.fail "fields did not parse as numbers"));
    t "ring buffer is bounded and keeps the newest events" (fun () ->
        with_log (fun () ->
            Log.set_ring_capacity 4;
            for i = 0 to 9 do
              Log.info "test.ring" [ Log.int "i" i ]
            done;
            let tail = Log.tail () in
            Alcotest.(check int) "bounded" 4 (List.length tail);
            let seqs =
              List.map
                (fun l -> int_of_float (Option.get (J.to_float (member "seq" (J.parse l)))))
                tail
            in
            Alcotest.(check (list int)) "newest, oldest-first" [ 6; 7; 8; 9 ] seqs));
    t "events carry the current trace span id" (fun () ->
        with_log (fun () ->
            let trace_was = Trace.enabled () in
            Trace.set_enabled true;
            Trace.reset ();
            Fun.protect ~finally:(fun () -> Trace.set_enabled trace_was) @@ fun () ->
            Log.info "test.nospan" [];
            let outside = Option.get (J.to_float (member "span" (last_event ()))) in
            Alcotest.(check (float 0.0)) "no span open" (-1.0) outside;
            let sp = Trace.start "log.span" in
            let id = Trace.current_id () in
            Log.info "test.inspan" [];
            Trace.finish sp;
            let inside = int_of_float (Option.get (J.to_float (member "span" (last_event ())))) in
            Alcotest.(check bool) "real id" true (id >= 0);
            Alcotest.(check int) "correlated" id inside));
  ]

let alloc_tests =
  [
    t "disabled guard-and-skip path is allocation-free" (fun () ->
        let was = Log.enabled () in
        Log.set_enabled false;
        Fun.protect ~finally:(fun () -> Log.set_enabled was) @@ fun () ->
        let f () =
          for i = 1 to 1000 do
            if Log.would_log Log.Warn then
              Log.warn "test.alloc" [ Log.int "i" i; Log.float "x" 0.5 ]
          done
        in
        f ();
        (* warm up *)
        let w0 = Gc.minor_words () in
        f ();
        let dw = Gc.minor_words () -. w0 in
        Alcotest.(check bool)
          (Printf.sprintf "minor words %.0f < 256" dw)
          true (dw < 256.0));
    t "disabled emit with prebuilt fields is allocation-free" (fun () ->
        let was = Log.enabled () in
        Log.set_enabled false;
        Fun.protect ~finally:(fun () -> Log.set_enabled was) @@ fun () ->
        let fields = [ Log.int "i" 1 ] in
        let f () =
          for _ = 1 to 1000 do
            Log.warn "test.alloc2" fields
          done
        in
        f ();
        let w0 = Gc.minor_words () in
        f ();
        let dw = Gc.minor_words () -. w0 in
        Alcotest.(check bool)
          (Printf.sprintf "minor words %.0f < 256" dw)
          true (dw < 256.0));
  ]

let with_tel f =
  let was = Tel.enabled () in
  Tel.set_enabled true;
  Tel.reset ();
  Fun.protect ~finally:(fun () -> Tel.set_enabled was) f

let prometheus_tests =
  [
    t "counters and histogram summaries expose correctly" (fun () ->
        with_tel (fun () ->
            let c = Tel.Counter.make "promtest.count" in
            Tel.Counter.add c 3;
            let h = Tel.Histogram.make "promtest.lat" in
            Tel.Histogram.observe h 0.5;
            Tel.Histogram.observe h 1.0;
            Tel.Histogram.observe h 2.0;
            let s = Tel.to_prometheus () in
            List.iter
              (fun frag ->
                if not (contains s frag) then Alcotest.failf "missing %S in:\n%s" frag s)
              [
                "# TYPE spatialdb_promtest_count_total counter";
                "spatialdb_promtest_count_total 3";
                "# TYPE spatialdb_promtest_lat summary";
                "spatialdb_promtest_lat{quantile=\"0.5\"}";
                "spatialdb_promtest_lat{quantile=\"0.9\"}";
                "spatialdb_promtest_lat{quantile=\"0.99\"}";
                "spatialdb_promtest_lat_count 3";
                "spatialdb_promtest_lat_sum";
                (* Exact observed extrema ride along as gauge families
                   (a merged/reset min can move either way). *)
                "# TYPE spatialdb_promtest_lat_min gauge";
                "spatialdb_promtest_lat_min 0.5";
                "# TYPE spatialdb_promtest_lat_max gauge";
                "spatialdb_promtest_lat_max 2";
              ]));
    t "counter samples are monotonic across snapshots" (fun () ->
        with_tel (fun () ->
            let c = Tel.Counter.make "promtest.mono" in
            Tel.Counter.add c 2;
            let value snapshot =
              let line =
                List.find
                  (fun l ->
                    String.length l > 0 && l.[0] <> '#'
                    && contains l "spatialdb_promtest_mono_total ")
                  (String.split_on_char '\n' snapshot)
              in
              match String.split_on_char ' ' (String.trim line) with
              | [ _; v ] -> float_of_string v
              | _ -> Alcotest.failf "malformed sample line %S" line
            in
            let v1 = value (Tel.to_prometheus ()) in
            Tel.Counter.add c 5;
            let v2 = value (Tel.to_prometheus ()) in
            Alcotest.(check bool) "monotonic" true (v2 >= v1);
            Alcotest.(check (float 0.0)) "exact" 7.0 v2));
    t "write_file lands atomically with no temp residue" (fun () ->
        with_tel (fun () ->
            let c = Tel.Counter.make "promtest.file" in
            Tel.Counter.incr c;
            let path = Filename.temp_file "spatialdb_metrics" ".prom" in
            Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
            @@ fun () ->
            Metrics.write_file ~path;
            Alcotest.(check bool) "file exists" true (Sys.file_exists path);
            Alcotest.(check bool) "no temp file" false (Sys.file_exists (path ^ ".tmp"));
            let ic = open_in path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            Alcotest.(check bool) "has samples" true
              (contains s "spatialdb_promtest_file_total 1")));
  ]

let suites =
  [
    ("log.events", event_tests);
    ("log.alloc", alloc_tests);
    ("log.prometheus", prometheus_tests);
  ]
