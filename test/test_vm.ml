(* Differential tests for the plan→kernel VM: the strict engine must be
   a bit-exact mirror of the observable interpreter (same rng stream,
   same sample stream), the optimized engine must stay inside the
   relation, and committed flight records must replay through both
   engines. *)

open Scdb_core
module P = Scdb_polytope.Polytope
module Rng = Scdb_rng.Rng
module Plan = Scdb_plan.Plan
module Vm = Scdb_vm.Vm
module Flight = Scdb_gis.Flight
module Plan_exec = Scdb_gis.Plan_exec
module Flightrec = Scdb_log.Flightrec

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let cfg = Convex_obs.practical_config

let check_streams what expected actual =
  match Flightrec.compare_samples ~recorded:expected ~replayed:actual with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%s: %s" what m

(* Disjoint boxes on a deterministic pseudo-random layout: box i sits at
   x ∈ [3i, 3i + w] with w, h drawn from a seeded rng, so K ∈ {1,4,16}
   exercises one-leaf collapse, small unions and wide dispatch tables. *)
let boxes_formula rng k =
  String.concat " \\/ "
    (List.init k (fun i ->
         let x0 = 3.0 *. float_of_int i in
         let w = 0.5 +. Rng.uniform rng 0.0 1.5 in
         let h = 0.5 +. Rng.uniform rng 0.0 1.5 in
         Printf.sprintf "(x >= %g /\\ x <= %g /\\ y >= 0 /\\ y <= %g)" x0 (x0 +. w) h))

let flight_args ?(engine = "interp") ?(n = 4) ~seed formula =
  {
    Flight.vars = [ "x"; "y" ];
    formula;
    n;
    seed;
    eps = 0.2;
    delta = 0.1;
    method_ = "walk";
    engine;
  }

let run_ok a =
  match Flight.run a with
  | Ok o -> o
  | Error m -> Alcotest.failf "Flight.run (%s) failed: %s" a.Flight.engine m

let read_fixture name =
  let path =
    Filename.concat (Filename.dirname Sys.executable_name) (Filename.concat "fixtures" name)
  in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Flightrec.of_json text with
  | Ok r -> r
  | Error m -> Alcotest.failf "fixture %s did not parse: %s" name m

(* Hand-built inter/diff harness: prepare the pieces once per engine
   from the same seed (identical preprocessing draws), then sample
   through the interpreter and through the strict VM and compare. *)

let box2 x0 x1 y0 y1 =
  P.box [| x0; y0 |] [| x1; y1 |]

let prepare_all seed polys =
  let rng = Rng.create seed in
  let preps = List.map (fun p -> Option.get (Convex_obs.prepare ~config:cfg rng p)) polys in
  (rng, Array.of_list preps)

let drain_draws o = Rng.draw_count o

let inter_case ~seed ~n =
  let polys = [ box2 0.0 2.0 0.0 1.0; box2 1.0 3.0 0.0 1.0 ] in
  let eps = 0.2 and delta = 0.1 and gamma = 0.05 in
  let m = List.length polys in
  let sub_eps = eps /. 3.0 and sub_delta = delta /. float_of_int (4 * m) in
  let leaf () =
    List.map
      (fun (p : P.t) ->
        Plan.dfk ~eps:sub_eps ~delta:sub_delta ~dim:(P.dim p) ~method_:"walk"
          ~constraints:(P.num_constraints p) ~volume_budget:2000 ())
      polys
  in
  let plan =
    Plan.finalize ~gamma ~eps ~delta ~task:(Plan.Sample n)
      (Plan.inter_ ~eps ~delta (leaf ()))
  in
  (* interpreter run *)
  let rng_i, preps_i = prepare_all seed polys in
  let obs = Inter.inter (List.map Convex_obs.observe (Array.to_list preps_i)) in
  let params = Params.make ~gamma ~eps ~delta () in
  let pts_i = Observable.sample_many obs rng_i params ~n in
  (* strict vm run *)
  let rng_v, preps_v = prepare_all seed polys in
  let prog =
    match Vm.compile ~plan ~pieces:preps_v () with
    | Ok p -> p
    | Error m -> Alcotest.failf "inter plan did not compile: %s" m
  in
  let pts_v = Vm.sample_many prog rng_v ~n in
  check_streams "inter streams" pts_i pts_v;
  Alcotest.(check int) "inter draw counts" (drain_draws rng_i) (drain_draws rng_v)

let diff_case ~seed ~n =
  let a = box2 0.0 3.0 0.0 1.0 and b = box2 2.0 5.0 (-1.0) 2.0 in
  let polys = [ a; b ] in
  let eps = 0.2 and delta = 0.1 and gamma = 0.05 in
  let sub_eps = eps /. 3.0 in
  let node p =
    Plan.dfk ~eps:sub_eps ~delta:0.1 ~dim:2 ~method_:"walk"
      ~constraints:(P.num_constraints p) ~volume_budget:2000 ()
  in
  let plan =
    Plan.finalize ~gamma ~eps ~delta ~task:(Plan.Sample n)
      (Plan.diff_ ~eps ~delta (node a) (node b))
  in
  let rng_i, preps_i = prepare_all seed polys in
  let obs =
    Diff.diff (Convex_obs.observe preps_i.(0)) (Convex_obs.observe preps_i.(1))
  in
  let params = Params.make ~gamma ~eps ~delta () in
  let pts_i = Observable.sample_many obs rng_i params ~n in
  let rng_v, preps_v = prepare_all seed polys in
  let prog =
    match Vm.compile ~plan ~pieces:preps_v () with
    | Ok p -> p
    | Error m -> Alcotest.failf "diff plan did not compile: %s" m
  in
  let pts_v = Vm.sample_many prog rng_v ~n in
  check_streams "diff streams" pts_i pts_v;
  Alcotest.(check int) "diff draw counts" (drain_draws rng_i) (drain_draws rng_v)

let union_case ~seed ~k ~n =
  let formula = boxes_formula (Rng.create (1000 + k)) k in
  let oi = run_ok (flight_args ~seed ~n formula) in
  let ov = run_ok (flight_args ~engine:"vm" ~seed ~n formula) in
  check_streams (Printf.sprintf "union K=%d streams" k) oi.Flight.points ov.Flight.points;
  Alcotest.(check int)
    (Printf.sprintf "union K=%d draw counts" k)
    (Rng.draw_count oi.Flight.rng) (Rng.draw_count ov.Flight.rng)

let mirror_tests =
  [
    ts "union plans: vm mirrors the interpreter bit-for-bit (K = 1, 4, 16)" (fun () ->
        List.iter (fun k -> union_case ~seed:(40 + k) ~k ~n:3) [ 1; 4; 16 ]);
    ts "grid-method union mirrors the interpreter" (fun () ->
        let formula = boxes_formula (Rng.create 77) 3 in
        let a = { (flight_args ~seed:5 ~n:3 formula) with Flight.method_ = "grid" } in
        let oi = run_ok a in
        let ov = run_ok { a with Flight.engine = "vm" } in
        check_streams "grid streams" oi.Flight.points ov.Flight.points;
        Alcotest.(check int) "grid draw counts" (Rng.draw_count oi.Flight.rng)
          (Rng.draw_count ov.Flight.rng));
    ts "rejection-method union mirrors the interpreter" (fun () ->
        let formula = boxes_formula (Rng.create 78) 2 in
        let a = { (flight_args ~seed:6 ~n:3 formula) with Flight.method_ = "rejection" } in
        let oi = run_ok a in
        let ov = run_ok { a with Flight.engine = "vm" } in
        check_streams "rejection streams" oi.Flight.points ov.Flight.points;
        Alcotest.(check int) "rejection draw counts" (Rng.draw_count oi.Flight.rng)
          (Rng.draw_count ov.Flight.rng));
    ts "intersection plans mirror the interpreter" (fun () ->
        List.iter (fun seed -> inter_case ~seed ~n:3) [ 51; 52 ]);
    ts "difference plans mirror the interpreter" (fun () ->
        List.iter (fun seed -> diff_case ~seed ~n:3) [ 61; 62 ]);
  ]

let opt_tests =
  [
    ts "vm-opt is deterministic and stays inside the relation" (fun () ->
        let formula = boxes_formula (Rng.create 79) 4 in
        let a = flight_args ~engine:"vm-opt" ~seed:8 ~n:12 formula in
        let o1 = run_ok a and o2 = run_ok a in
        check_streams "same seed, same stream" o1.Flight.points o2.Flight.points;
        List.iter
          (fun x ->
            Alcotest.(check bool) "member" true
              (Relation.mem_float ~slack:1e-6 o1.Flight.relation x))
          o1.Flight.points;
        Alcotest.(check int) "count" 12 (List.length o1.Flight.points));
    t "vm-opt swaps cheap low-dimensional leaves to rejection-box" (fun () ->
        let rng = Rng.create 9 in
        let relation = Relation.of_formula ~dim:2
            (Scdb_constr.Parser.parse ~vars:[ "x"; "y" ] "x >= 0 /\\ y >= 0 /\\ x + y <= 1")
        in
        match
          Plan_exec.compiled_of_relation ~config:cfg ~optimize:true ~gamma:0.05 ~eps:0.2
            ~delta:0.1 ~task:(Plan.Sample 4) rng relation
        with
        | Some (_, Ok prog) ->
            Alcotest.(check bool) "optimized" true (Vm.optimized prog);
            Alcotest.(check bool) "listing mentions rejection-box" true
              (let s = Vm.disassemble prog in
               let n = String.length s and pat = "rejection-box" in
               let k = String.length pat in
               let rec go i = i + k <= n && (String.sub s i k = pat || go (i + 1)) in
               go 0)
        | Some (_, Error m) -> Alcotest.failf "compile failed: %s" m
        | None -> Alcotest.fail "relation should be compilable");
  ]

let compile_tests =
  [
    t "piece-count mismatch is refused" (fun () ->
        let rng = Rng.create 10 in
        let prep = Option.get (Convex_obs.prepare ~config:cfg rng (box2 0.0 1.0 0.0 1.0)) in
        let plan =
          Plan.finalize ~gamma:0.05 ~eps:0.2 ~delta:0.1 ~task:(Plan.Sample 1)
            (Plan.dfk ~eps:0.2 ~delta:0.1 ~dim:2 ~method_:"walk" ~volume_budget:2000 ())
        in
        match Vm.compile ~plan ~pieces:[| prep; prep |] () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a piece-count error");
    t "volume tasks are refused" (fun () ->
        let rng = Rng.create 11 in
        let prep = Option.get (Convex_obs.prepare ~config:cfg rng (box2 0.0 1.0 0.0 1.0)) in
        let plan =
          Plan.finalize ~gamma:0.05 ~eps:0.2 ~delta:0.1 ~task:Plan.Volume
            (Plan.dfk ~eps:0.2 ~delta:0.1 ~dim:2 ~method_:"walk" ~volume_budget:2000 ())
        in
        match Vm.compile ~plan ~pieces:[| prep |] () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected a task error");
    t "instruction_count and disassembly agree" (fun () ->
        let rng = Rng.create 12 in
        let relation = Relation.unit_cube 2 in
        match
          Plan_exec.compiled_of_relation ~config:cfg ~gamma:0.05 ~eps:0.2 ~delta:0.1
            ~task:(Plan.Sample 1) rng relation
        with
        | Some (_, Ok prog) ->
            let listing = Vm.disassemble prog in
            let lines =
              List.filter
                (fun l -> String.length l > 0 && l.[0] <> ';')
                (String.split_on_char '\n' listing)
            in
            Alcotest.(check int) "one line per instruction" (Vm.instruction_count prog)
              (List.length lines);
            Alcotest.(check int) "dim" 2 (Vm.dim prog);
            Alcotest.(check bool) "strict by default" false (Vm.optimized prog)
        | Some (_, Error m) -> Alcotest.failf "compile failed: %s" m
        | None -> Alcotest.fail "unit cube should be compilable");
  ]

let fixture_tests =
  [
    ts "pre-batching fixture replays through the vm engine" (fun () ->
        let r = read_fixture "incremental_k1.flightrec.json" in
        (match Flight.replay ~engine:"vm" r with
        | Ok n -> Alcotest.(check int) "samples reproduced" 6 n
        | Error m -> Alcotest.failf "vm replay diverged: %s" m);
        Rng.Provenance.set_tracking false);
    ts "union fixture replays through both engines" (fun () ->
        let r = read_fixture "union_k3.flightrec.json" in
        (match Flight.replay r with
        | Ok n -> Alcotest.(check int) "interp samples" 6 n
        | Error m -> Alcotest.failf "interp replay diverged: %s" m);
        (match Flight.replay ~engine:"vm" r with
        | Ok n -> Alcotest.(check int) "vm samples" 6 n
        | Error m -> Alcotest.failf "vm replay diverged: %s" m);
        Rng.Provenance.set_tracking false);
  ]

let suites =
  [
    ("vm.mirror", mirror_tests);
    ("vm.opt", opt_tests);
    ("vm.compile", compile_tests);
    ("vm.fixtures", fixture_tests);
  ]
