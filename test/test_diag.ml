(* Tests for the convergence diagnostics: Welford moments, ESS,
   split-chain R-hat, the walk monitor, and the end-to-end multi-chain
   harness on the Figure 1 triangle. *)

module Diag = Scdb_diag.Diag
module Diag_run = Scdb_core.Diag_run
module P = Scdb_polytope.Polytope
module Rng = Scdb_rng.Rng

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let welford_tests =
  [
    t "mean and variance match the direct formulas" (fun () ->
        let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
        let w = Diag.Welford.create () in
        Array.iter (Diag.Welford.add w) xs;
        let n = float_of_int (Array.length xs) in
        let mean = Array.fold_left ( +. ) 0.0 xs /. n in
        let var =
          Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
        in
        Alcotest.(check int) "count" 8 (Diag.Welford.count w);
        Alcotest.(check (float 1e-12)) "mean" mean (Diag.Welford.mean w);
        Alcotest.(check (float 1e-12)) "variance" var (Diag.Welford.variance w));
    t "degenerate cases are zero" (fun () ->
        let w = Diag.Welford.create () in
        Alcotest.(check (float 0.0)) "empty mean" 0.0 (Diag.Welford.mean w);
        Diag.Welford.add w 3.0;
        Alcotest.(check (float 0.0)) "n=1 variance" 0.0 (Diag.Welford.variance w));
  ]

let series_tests =
  [
    t "lag-0 autocorrelation is 1" (fun () ->
        let rng = Rng.create 3 in
        let xs = Array.init 256 (fun _ -> Rng.gaussian rng) in
        Alcotest.(check (float 1e-12)) "rho_0" 1.0 (Diag.autocorrelation xs 0));
    t "iid series has near-full ESS" (fun () ->
        let rng = Rng.create 17 in
        let xs = Array.init 1024 (fun _ -> Rng.gaussian rng) in
        let e = Diag.ess xs in
        Alcotest.(check bool) "ess > n/2" true (e > 512.0);
        Alcotest.(check bool) "ess <= n" true (e <= 1024.0));
    t "strongly autocorrelated series has small ESS" (fun () ->
        let rng = Rng.create 17 in
        let xs = Array.make 1024 0.0 in
        for i = 1 to 1023 do
          xs.(i) <- (0.98 *. xs.(i - 1)) +. (0.1 *. Rng.gaussian rng)
        done;
        let e = Diag.ess xs in
        Alcotest.(check bool) "ess << n" true (e < 256.0));
    t "constant series clamps to ESS 1..n" (fun () ->
        let xs = Array.make 64 5.0 in
        let e = Diag.ess xs in
        Alcotest.(check bool) "in range" true (e >= 1.0 && e <= 64.0));
    t "split R-hat near 1 for same-distribution chains" (fun () ->
        let chains =
          Array.init 4 (fun i ->
              let rng = Rng.create (100 + i) in
              Array.init 256 (fun _ -> Rng.gaussian rng))
        in
        let r = Diag.split_rhat chains in
        Alcotest.(check bool) "close to 1" true (r < 1.1));
    t "split R-hat flags shifted chains" (fun () ->
        let chains =
          Array.init 4 (fun i ->
              let rng = Rng.create (200 + i) in
              let shift = if i land 1 = 0 then 5.0 else -5.0 in
              Array.init 256 (fun _ -> shift +. Rng.gaussian rng))
        in
        let r = Diag.split_rhat chains in
        Alcotest.(check bool) "well above 1.1" true (r > 1.2));
    t "split R-hat flags a drifting chain (within-chain split)" (fun () ->
        (* A single chain whose two halves disagree: the "split" part of
           split R-hat must catch it even with m = 1. *)
        let chain = Array.init 256 (fun i -> if i < 128 then 0.0 else 10.0) in
        let chain = Array.mapi (fun i x -> x +. (0.001 *. float_of_int (i mod 7))) chain in
        let r = Diag.split_rhat [| chain |] in
        Alcotest.(check bool) "above 1.1" true (r > 1.1));
  ]

let monitor_tests =
  [
    t "thinning keeps every k-th recorded position" (fun () ->
        let m = Diag.Monitor.create ~thin:3 ~dim:1 () in
        for i = 1 to 10 do
          Diag.Monitor.record m [| float_of_int i |]
        done;
        Alcotest.(check int) "steps" 10 (Diag.Monitor.steps m);
        let kept = Diag.Monitor.kept m in
        Alcotest.(check bool) "kept about n/3" true (kept >= 3 && kept <= 4);
        let s = Diag.Monitor.series m 0 in
        Alcotest.(check int) "series length" kept (Array.length s));
    t "acceptance and stall bookkeeping" (fun () ->
        let m = Diag.Monitor.create ~dim:1 () in
        Diag.Monitor.reject m;
        Diag.Monitor.reject m;
        Diag.Monitor.reject m;
        Diag.Monitor.accept m;
        Diag.Monitor.reject m;
        Diag.Monitor.accept m;
        Alcotest.(check int) "proposals" 6 (Diag.Monitor.proposals m);
        Alcotest.(check int) "accepted" 2 (Diag.Monitor.accepted m);
        Alcotest.(check (float 1e-12)) "rate" (2.0 /. 6.0) (Diag.Monitor.acceptance_rate m);
        Alcotest.(check int) "max stall" 3 (Diag.Monitor.max_stall m));
    t "per-coordinate means track the recorded series" (fun () ->
        let m = Diag.Monitor.create ~dim:2 () in
        Diag.Monitor.record m [| 1.0; 10.0 |];
        Diag.Monitor.record m [| 3.0; 30.0 |];
        let mu = Diag.Monitor.mean_per_coord m in
        Alcotest.(check (float 1e-12)) "coord 0" 2.0 mu.(0);
        Alcotest.(check (float 1e-12)) "coord 1" 20.0 mu.(1));
  ]

let assess_tests =
  [
    t "clean diagnostics converge" (fun () ->
        let v =
          Diag.assess ~rhat:[| 1.01; 1.02 |] ~ess:[| [| 50.0; 60.0 |]; [| 55.0; 45.0 |] |] ()
        in
        Alcotest.(check bool) "converged" true v.Diag.converged);
    t "high R-hat fails" (fun () ->
        let v = Diag.assess ~rhat:[| 1.5 |] ~ess:[| [| 100.0 |] |] () in
        Alcotest.(check bool) "not converged" false v.Diag.converged);
    t "low ESS fails" (fun () ->
        let v = Diag.assess ~rhat:[| 1.0 |] ~ess:[| [| 2.0 |] |] () in
        Alcotest.(check bool) "not converged" false v.Diag.converged);
  ]

let harness_tests =
  [
    ts "hit-and-run mixes on the Figure 1 triangle at the prescribed length" (fun () ->
        let rng = Rng.create 42 in
        match Diag_run.run rng (P.simplex 2) with
        | None -> Alcotest.fail "triangle should round"
        | Some d ->
            Alcotest.(check int) "4 chains" 4 (Array.length d.Diag_run.chains);
            Array.iter
              (fun r -> Alcotest.(check bool) "R-hat < 1.1" true (r < 1.1))
              d.Diag_run.rhat;
            Array.iter
              (fun (c : Diag_run.chain) ->
                Alcotest.(check int) "kept" d.Diag_run.samples_per_chain c.Diag_run.kept;
                Array.iter
                  (fun e -> Alcotest.(check bool) "ess finite positive" true (Float.is_finite e && e >= 1.0))
                  c.Diag_run.ess)
              d.Diag_run.chains;
            Alcotest.(check bool) "verdict converged" true d.Diag_run.verdict.Diag.converged);
    ts "to_json parses and carries finite diagnostics" (fun () ->
        let rng = Rng.create 7 in
        match Diag_run.run ~samples_per_chain:16 rng (P.simplex 2) with
        | None -> Alcotest.fail "triangle should round"
        | Some d -> (
            let module J = Scdb_trace.Json_min in
            let doc = J.parse (Diag_run.to_json d) in
            match J.member "rhat" doc with
            | Some r ->
                let l = Option.get (J.to_list r) in
                Alcotest.(check int) "one rhat per coord" 2 (List.length l);
                List.iter
                  (fun v ->
                    Alcotest.(check bool) "finite" true
                      (Float.is_finite (Option.get (J.to_float v))))
                  l
            | None -> Alcotest.fail "rhat missing"));
  ]

(* Per-chain monitors on the batched kernel must reproduce the old
   sequential-chain loop exactly: same recorded series, hence the same
   ESS, means, acceptance statistics and split R-hat, when each chain is
   given the same generator and Compat directions. *)
let batch_parity_tests =
  let module HR = Scdb_sampling.Hit_and_run in
  [
    t "record_off matches record" (fun () ->
        let a = Diag.Monitor.create ~dim:2 () in
        let b = Diag.Monitor.create ~dim:2 () in
        let flat = [| 9.0; 1.0; 2.0; 3.0; 4.0; 9.0 |] in
        Diag.Monitor.record a [| 1.0; 2.0 |];
        Diag.Monitor.record a [| 3.0; 4.0 |];
        Diag.Monitor.record_off b flat 1;
        Diag.Monitor.record_off b flat 3;
        Alcotest.(check int) "kept" (Diag.Monitor.kept a) (Diag.Monitor.kept b);
        for j = 0 to 1 do
          Alcotest.(check (array (float 0.0)))
            (Printf.sprintf "series %d" j)
            (Diag.Monitor.series a j) (Diag.Monitor.series b j)
        done);
    ts "batched monitors give bit-identical ESS/R-hat to sequential chains" (fun () ->
        let poly = P.simplex 3 in
        let dim = 3 in
        let chains = 4 in
        let thin = 8 and steps = 8 * 48 in
        let start () = Array.make dim 0.2 in
        let seeds = [| 101; 202; 303; 404 |] in
        (* Old-style loop: one monitor per chain, sequential walks. *)
        let seq_monitors =
          Array.map
            (fun seed ->
              let m = Diag.Monitor.create ~thin ~dim () in
              ignore
                (HR.sample_polytope ~monitor:m (Rng.create seed) poly ~start:(start ())
                   ~steps);
              m)
            seeds
        in
        (* Batched: same seeds, Compat directions, one kernel call. *)
        let batch_monitors = Array.init chains (fun _ -> Diag.Monitor.create ~thin ~dim ()) in
        let rngs = Array.map Rng.create seeds in
        let starts = Array.init chains (fun _ -> start ()) in
        ignore
          (HR.sample_polytope_batch ~monitors:batch_monitors ~dir_mode:HR.Compat rngs poly
             ~starts ~steps);
        Array.iteri
          (fun c seq ->
            let bat = batch_monitors.(c) in
            Alcotest.(check int)
              (Printf.sprintf "chain %d kept" c)
              (Diag.Monitor.kept seq) (Diag.Monitor.kept bat);
            Alcotest.(check (float 0.0))
              (Printf.sprintf "chain %d acceptance" c)
              (Diag.Monitor.acceptance_rate seq)
              (Diag.Monitor.acceptance_rate bat);
            Alcotest.(check (array (float 0.0)))
              (Printf.sprintf "chain %d ess" c)
              (Diag.Monitor.ess_per_coord seq)
              (Diag.Monitor.ess_per_coord bat);
            Alcotest.(check (array (float 0.0)))
              (Printf.sprintf "chain %d mean" c)
              (Diag.Monitor.mean_per_coord seq)
              (Diag.Monitor.mean_per_coord bat))
          seq_monitors;
        let seq_list = Array.to_list seq_monitors in
        let bat_list = Array.to_list batch_monitors in
        for coord = 0 to dim - 1 do
          Alcotest.(check (float 0.0))
            (Printf.sprintf "rhat coord %d" coord)
            (Diag.split_rhat_monitors seq_list ~coord)
            (Diag.split_rhat_monitors bat_list ~coord)
        done);
  ]

let suites =
  [
    ("diag.welford", welford_tests);
    ("diag.series", series_tests);
    ("diag.monitor", monitor_tests);
    ("diag.assess", assess_tests);
    ("diag.batch_parity", batch_parity_tests);
    ("diag.harness", harness_tests);
  ]
