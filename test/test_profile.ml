(* Tests for the instruction profiler and the symbolization table: every
   pc must map to a live plan node, the strict VM's per-node progress
   actuals must equal the interpreter's (the per-leaf attribution fix),
   profiling must never perturb the sample stream, and the perf-trend
   ledger must flag drifting trajectories. *)

open Scdb_core
module Rng = Scdb_rng.Rng
module Plan = Scdb_plan.Plan
module Vm = Scdb_vm.Vm
module Profile = Scdb_profile.Profile
module Plan_exec = Scdb_gis.Plan_exec
module Progress = Scdb_progress.Progress
module Flightrec = Scdb_log.Flightrec

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let cfg = Convex_obs.practical_config

(* Same disjoint-box layout as test_vm: K ∈ {1,4,16} exercises one-leaf
   collapse, small unions and wide dispatch tables. *)
let boxes_formula rng k =
  String.concat " \\/ "
    (List.init k (fun i ->
         let x0 = 3.0 *. float_of_int i in
         let w = 0.5 +. Rng.uniform rng 0.0 1.5 in
         let h = 0.5 +. Rng.uniform rng 0.0 1.5 in
         Printf.sprintf "(x >= %g /\\ x <= %g /\\ y >= 0 /\\ y <= %g)" x0 (x0 +. w) h))

let fig1_union =
  "(x >= 0 /\\ y >= 0 /\\ x + y <= 1) \\/ (x >= 2 /\\ x <= 3 /\\ y >= 0 /\\ y <= 1)"

let relation_of formula = Relation.of_formula ~dim:2 (Parser.parse ~vars:[ "x"; "y" ] formula)

let compile_ok ?(optimize = false) ~task ~seed formula =
  let rng = Rng.create seed in
  match
    Plan_exec.compiled_of_relation ~config:cfg ~optimize ~gamma:0.05 ~eps:0.2 ~delta:0.1 ~task
      rng (relation_of formula)
  with
  | Some (plan, Ok prog) -> (plan, prog, rng)
  | Some (_, Error m) -> Alcotest.failf "compile failed: %s" m
  | None -> Alcotest.fail "fixture relation is empty"

let known_tags = [ "rejection_box_substituted"; "shared_union_leaf"; "reordered_membership" ]

(* ------------------------------------------------------------------ *)
(* Symbolization                                                       *)
(* ------------------------------------------------------------------ *)

let symbolization_tests =
  let check_program ~what plan prog =
    let bases = Vm.instruction_bases prog in
    Alcotest.(check bool) (what ^ ": program non-empty") true (Array.length bases > 0);
    Array.iter
      (fun pc ->
        let node = Vm.node_at prog pc in
        (match Plan.find_node plan node with
        | Some _ -> ()
        | None -> Alcotest.failf "%s: pc %d maps to node %d not present in the plan" what pc node);
        match Vm.tag_at prog pc with
        | None -> ()
        | Some tag ->
            if not (List.mem tag known_tags) then
              Alcotest.failf "%s: pc %d carries unknown tag %S" what pc tag)
      bases
  in
  [
    t "every pc maps to a live plan node (strict and optimized, K in {1,4,16})" (fun () ->
        let layout = Rng.create 99 in
        List.iter
          (fun k ->
            let formula = boxes_formula layout k in
            List.iter
              (fun optimize ->
                let what = Printf.sprintf "K=%d %s" k (if optimize then "vm-opt" else "vm") in
                let plan, prog, _ =
                  compile_ok ~optimize ~task:(Plan.Sample 2) ~seed:(1000 + k) formula
                in
                check_program ~what plan prog)
              [ false; true ])
          [ 1; 4; 16 ]);
    t "vm-opt tags rejection-box substitution on the Figure 1 union" (fun () ->
        let _, prog, _ = compile_ok ~optimize:true ~task:(Plan.Sample 2) ~seed:7 fig1_union in
        let tags = List.concat_map snd (Vm.rewrite_tags prog) in
        Alcotest.(check bool)
          "some instruction is tagged" true
          (List.mem "rejection_box_substituted" tags));
    t "strict vm carries no rewrite tags" (fun () ->
        let _, prog, _ = compile_ok ~task:(Plan.Sample 2) ~seed:7 fig1_union in
        Alcotest.(check (list string)) "no tags" [] (List.concat_map snd (Vm.rewrite_tags prog)));
    t "annotated disassembly names nodes and tags" (fun () ->
        let _, prog, _ = compile_ok ~optimize:true ~task:(Plan.Sample 2) ~seed:7 fig1_union in
        let text = Vm.disassemble prog in
        let has needle =
          let ln = String.length needle and lt = String.length text in
          let rec go i = i + ln <= lt && (String.sub text i ln = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "node annotation" true (has "; n0");
        Alcotest.(check bool) "tag annotation" true (has "rejection_box_substituted"));
  ]

(* ------------------------------------------------------------------ *)
(* Counting mode                                                       *)
(* ------------------------------------------------------------------ *)

let counting_tests =
  [
    t "counting totals agree across the pc/opcode/node views" (fun () ->
        let n = 8 in
        let _, prog, rng = compile_ok ~task:(Plan.Sample n) ~seed:21 fig1_union in
        let profile = Profile.create prog in
        ignore (Profile.sample_many profile rng ~n);
        let total = Profile.total_count profile in
        Alcotest.(check bool) "instructions executed" true (total > 0);
        let sum_pc =
          Array.fold_left (fun a (r : Profile.pc_row) -> a + r.Profile.count) 0
            (Profile.pc_rows profile)
        in
        let sum_op =
          List.fold_left (fun a (r : Profile.opcode_row) -> a + r.Profile.op_count) 0
            (Profile.per_opcode profile)
        in
        let sum_node =
          List.fold_left (fun a (r : Profile.node_row) -> a + r.Profile.instructions) 0
            (Profile.per_node profile)
        in
        Alcotest.(check int) "pc view" total sum_pc;
        Alcotest.(check int) "opcode view" total sum_op;
        Alcotest.(check int) "node view" total sum_node;
        Alcotest.(check (float 0.0)) "no ns in counting mode" 0.0 (Profile.total_ns profile);
        let emits =
          List.filter_map
            (fun (r : Profile.opcode_row) ->
              if r.Profile.op_name = "emit" then Some r.Profile.op_count else None)
            (Profile.per_opcode profile)
        in
        Alcotest.(check (list int)) "one emit per draw" [ n ] emits);
    t "pc_rows covers every instruction, ascending" (fun () ->
        let _, prog, rng = compile_ok ~task:(Plan.Sample 2) ~seed:22 fig1_union in
        let profile = Profile.create prog in
        ignore (Profile.sample_many profile rng ~n:2);
        let rows = Profile.pc_rows profile in
        let bases = Vm.instruction_bases prog in
        Alcotest.(check int) "coverage" (Array.length bases) (Array.length rows);
        Array.iteri
          (fun i (r : Profile.pc_row) ->
            Alcotest.(check int) (Printf.sprintf "row %d pc" i) bases.(i) r.Profile.pc)
          rows);
    t "vm.op telemetry counters track executed instructions" (fun () ->
        let module Tel = Scdb_telemetry.Telemetry in
        let was = Tel.enabled () in
        Tel.set_enabled true;
        Tel.reset ();
        let n = 4 in
        let _, prog, rng = compile_ok ~task:(Plan.Sample n) ~seed:23 fig1_union in
        let profile = Profile.create prog in
        ignore (Profile.sample_many profile rng ~n);
        let counted =
          List.fold_left
            (fun acc (r : Profile.opcode_row) ->
              let tel =
                Option.value ~default:0 (Tel.counter_value ("vm.op." ^ r.Profile.op_name))
              in
              Alcotest.(check int) ("vm.op." ^ r.Profile.op_name) r.Profile.op_count tel;
              acc + tel)
            0 (Profile.per_opcode profile)
        in
        Tel.set_enabled was;
        Alcotest.(check int) "telemetry total" (Profile.total_count profile) counted);
  ]

(* ------------------------------------------------------------------ *)
(* Per-node attribution: strict VM vs interpreter                      *)
(* ------------------------------------------------------------------ *)

(* The strict VM mirrors the interpreter draw for draw, so with the
   progress bus armed both engines must accrue identical per-node
   actuals — this is the differential check that WALK/TICK route
   work through the per-leaf symbolization paths rather than dumping
   everything on the root. *)
let attribution_case k n () =
  let formula = boxes_formula (Rng.create 99) k in
  let task = Plan.Sample n in
  let seed = 3000 + (17 * k) + n in
  let interp_rows =
    let rng = Rng.create seed in
    match
      Plan_exec.observable_of_relation ~config:cfg ~gamma:0.05 ~eps:0.2 ~delta:0.1 ~task rng
        (relation_of formula)
    with
    | None -> Alcotest.fail "interp fixture empty"
    | Some (plan, obs) ->
        Plan_exec.arm plan;
        let params = Params.make ~gamma:0.05 ~eps:0.2 ~delta:0.1 () in
        ignore (Observable.sample_many obs rng params ~n);
        let rows = Plan_exec.attribution plan in
        Progress.stop ();
        rows
  in
  let vm_rows =
    let plan, prog, rng = compile_ok ~task ~seed formula in
    Plan_exec.arm plan;
    ignore (Vm.sample_many prog rng ~n);
    let rows = Plan_exec.attribution ~program:prog plan in
    Progress.stop ();
    rows
  in
  Alcotest.(check int) "same node count" (Array.length interp_rows) (Array.length vm_rows);
  Array.iteri
    (fun i (ir : Plan_exec.attribution_row) ->
      let vr = vm_rows.(i) in
      Alcotest.(check int) (Printf.sprintf "node %d id" i) ir.Plan_exec.id vr.Plan_exec.id;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "node %d (%s) actual work" ir.Plan_exec.id ir.Plan_exec.op)
        ir.Plan_exec.actual vr.Plan_exec.actual)
    interp_rows

let attribution_tests =
  [
    t "strict vm per-node actuals equal the interpreter's (K=1)" (attribution_case 1 6);
    t "strict vm per-node actuals equal the interpreter's (K=4)" (attribution_case 4 6);
    ts "strict vm per-node actuals equal the interpreter's (K=16)" (attribution_case 16 4);
    t "vm leaf nodes accrue their own actuals" (fun () ->
        let plan, prog, rng = compile_ok ~task:(Plan.Sample 8) ~seed:31 fig1_union in
        Plan_exec.arm plan;
        ignore (Vm.sample_many prog rng ~n:8);
        let rows = Plan_exec.attribution plan in
        Progress.stop ();
        let leaves =
          Array.to_list rows
          |> List.filter (fun (r : Plan_exec.attribution_row) -> r.Plan_exec.op = "dfk")
        in
        Alcotest.(check int) "two leaves" 2 (List.length leaves);
        List.iter
          (fun (r : Plan_exec.attribution_row) ->
            Alcotest.(check bool)
              (Printf.sprintf "leaf %d ran" r.Plan_exec.id)
              true (r.Plan_exec.actual > 0.0))
          leaves);
  ]

(* ------------------------------------------------------------------ *)
(* Stream preservation                                                 *)
(* ------------------------------------------------------------------ *)

let check_streams what expected actual =
  match Flightrec.compare_samples ~recorded:expected ~replayed:actual with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%s: %s" what m

let stream_tests =
  [
    t "profiled runs emit the bit-identical stream (counting and timing)" (fun () ->
        let n = 6 in
        List.iter
          (fun optimize ->
            let plain =
              let _, prog, rng = compile_ok ~optimize ~task:(Plan.Sample n) ~seed:41 fig1_union in
              Vm.sample_many prog rng ~n
            in
            List.iter
              (fun mode ->
                let _, prog, rng =
                  compile_ok ~optimize ~task:(Plan.Sample n) ~seed:41 fig1_union
                in
                let profile = Profile.create ~mode prog in
                let pts = Profile.sample_many profile rng ~n in
                check_streams
                  (Printf.sprintf "%s/%s"
                     (if optimize then "vm-opt" else "vm")
                     (Profile.mode_name mode))
                  plain pts;
                Alcotest.(check int) "draws recorded" n (Profile.draws profile))
              [ Profile.Counting; Profile.Timing ])
          [ false; true ]);
    t "timing mode accumulates ns on the kernel opcodes" (fun () ->
        let _, prog, rng = compile_ok ~task:(Plan.Sample 8) ~seed:42 fig1_union in
        let profile = Profile.create ~mode:Profile.Timing prog in
        ignore (Profile.sample_many profile rng ~n:8);
        Alcotest.(check bool) "total ns positive" true (Profile.total_ns profile > 0.0);
        Array.iter
          (fun (r : Profile.pc_row) ->
            if Float.is_nan r.Profile.ns || r.Profile.ns < 0.0 then
              Alcotest.failf "pc %d has bad ns %g" r.Profile.pc r.Profile.ns)
          (Profile.pc_rows profile));
  ]

(* ------------------------------------------------------------------ *)
(* Trend ledger CLI                                                    *)
(* ------------------------------------------------------------------ *)

let regress_exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bench" "regress.exe")

let write_bench path rows =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"spatialdb-bench/7\",\n  \"results\": [\n%s\n  ]\n}\n"
    (String.concat ",\n"
       (List.map
          (fun (name, ns) ->
            Printf.sprintf "    {\"name\": %S, \"ns_per_op\": %.3f, \"trials\": 9}" name ns)
          rows));
  close_out oc

let trend_run files =
  Sys.command
    (Filename.quote regress_exe ^ " --trend "
    ^ String.concat " " (List.map Filename.quote files)
    ^ " >/dev/null 2>&1")

let trend_tests =
  [
    t "regress.exe exists where the test expects it" (fun () ->
        Alcotest.(check bool) regress_exe true (Sys.file_exists regress_exe));
    t "trend exits 1 on an unrecovered normalized drift" (fun () ->
        (* Machine speed doubles between files 2 and 3 (ref 1000 -> 500)
           while the metric only drops to 80: normalized it drifts
           0.10 -> 0.10 -> 0.16, a 1.6x ending — the BENCH_3 shape. *)
        write_bench "trend_d1.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.x", 100.0) ];
        write_bench "trend_d2.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.x", 100.0) ];
        write_bench "trend_d3.json" [ ("hit_and_run.step.seed", 500.0); ("kernel.x", 80.0) ];
        Alcotest.(check int) "exit 1"
          1
          (trend_run [ "trend_d1.json"; "trend_d2.json"; "trend_d3.json" ]));
    t "trend exits 0 when the drift recovered" (fun () ->
        write_bench "trend_r1.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.x", 100.0) ];
        write_bench "trend_r2.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.x", 160.0) ];
        write_bench "trend_r3.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.x", 100.0) ];
        Alcotest.(check int) "exit 0"
          0
          (trend_run [ "trend_r1.json"; "trend_r2.json"; "trend_r3.json" ]));
    t "trend skips metrics under the noise floor" (fun () ->
        (* A 4 ns kernel doubling is timer jitter, not a regression:
           under the default 50 ns floor it must not fail, but the same
           shape above the floor must.  The floor keys off the series
           maximum, so a kernel regressing *past* the floor re-enters. *)
        write_bench "trend_f1.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.tiny", 4.0) ];
        write_bench "trend_f2.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.tiny", 8.0) ];
        Alcotest.(check int) "sub-floor jitter passes" 0
          (trend_run [ "trend_f1.json"; "trend_f2.json" ]);
        Alcotest.(check int) "same shape fails with --trend-floor 0" 1
          (trend_run [ "--trend-floor"; "0"; "trend_f1.json"; "trend_f2.json" ]);
        write_bench "trend_f3.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.tiny", 90.0) ];
        Alcotest.(check int) "regressing past the floor re-enters the ledger" 1
          (trend_run [ "trend_f1.json"; "trend_f2.json"; "trend_f3.json" ]));
    t "trend baseline shrugs off one skewed-reference file" (fun () ->
        (* In file 3 the reference kernel ran 2x slow, deflating every
           normalized value in that file by the same common-mode
           factor.  A minimum baseline would be poisoned forever (the
           honest file 4 reads 2x its minimum); the median baseline
           must pass it. *)
        write_bench "trend_s1.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.x", 100.0) ];
        write_bench "trend_s2.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.x", 100.0) ];
        write_bench "trend_s3.json" [ ("hit_and_run.step.seed", 2000.0); ("kernel.x", 100.0) ];
        write_bench "trend_s4.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.x", 100.0) ];
        Alcotest.(check int) "exit 0" 0
          (trend_run [ "trend_s1.json"; "trend_s2.json"; "trend_s3.json"; "trend_s4.json" ]);
        (* ... while an ending that sits above the typical level by more
           than the threshold still fails even though the skewed file
           dragged the median down a little. *)
        write_bench "trend_s5.json" [ ("hit_and_run.step.seed", 1000.0); ("kernel.x", 140.0) ];
        Alcotest.(check int) "regressed ending still fails" 1
          (trend_run
             [ "trend_s1.json"; "trend_s2.json"; "trend_s3.json"; "trend_s4.json"; "trend_s5.json" ]));
    t "trend flags the committed BENCH_1..3 drift retroactively" (fun () ->
        (* The incremental hit-and-run kernel silently regressed
           1624 -> 2046 ns between BENCH_2 and BENCH_3 while the seed
           reference barely moved; the ledger must catch it. *)
        let root f = Filename.concat "../../.." f in
        if Sys.file_exists (root "BENCH_1.json") then
          Alcotest.(check int) "exit 1" 1
            (trend_run [ root "BENCH_1.json"; root "BENCH_2.json"; root "BENCH_3.json" ]));
  ]

let suites =
  [
    ("profile.symbolization", symbolization_tests);
    ("profile.counting", counting_tests);
    ("profile.attribution", attribution_tests);
    ("profile.stream", stream_tests);
    ("profile.trend", trend_tests);
  ]
