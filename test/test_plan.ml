(* Tests for the static cost model (Scdb_plan): the budget-equality
   invariant (the runtime and the planner call the same formulas),
   monotonicity of predicted cost in the accuracy parameters, and the
   spatialdb-plan/1 JSON round trip. *)

module Plan = Scdb_plan.Plan
module Cost = Scdb_plan.Cost
module J = Scdb_trace.Json_min
module Chernoff = Scdb_sampling.Chernoff
module HR = Scdb_sampling.Hit_and_run
module W = Scdb_sampling.Walk
module Union = Scdb_core.Union
module Inter = Scdb_core.Inter
module Boost = Scdb_core.Boost

let t name f = Alcotest.test_case name `Quick f

let leaf ?(eps = 0.2) ?(delta = 0.1) ?(dim = 2) () =
  Plan.dfk ~eps ~delta ~dim ~method_:"walk" ~constraints:3 ~volume_budget:2000 ()

let plan_of ?(eps = 0.2) ?(delta = 0.1) ~task node =
  Plan.finalize ~gamma:0.05 ~eps ~delta ~task node

(* ---------------- budget equality ---------------- *)

(* The invariant the shared Cost module exists for: the budget a plan
   node advertises is the budget the runtime spends, because both call
   the same function.  Checked both at the formula level (runtime
   delegation) and at the plan-attribute level. *)
let equality_tests =
  [
    t "union trials: runtime = Cost = plan attribute" (fun () ->
        List.iter
          (fun (m, delta) ->
            Alcotest.(check int)
              (Printf.sprintf "m=%d delta=%g" m delta)
              (Cost.union_trials ~m ~delta)
              (Union.trials_for ~m ~delta))
          [ (1, 0.1); (2, 0.1); (5, 0.05); (17, 0.01); (3, 0.5) ];
        let children = [ leaf (); leaf () ] in
        let plan = plan_of ~task:(Plan.Sample 1) (Plan.union_ ~eps:0.2 ~delta:0.1 children) in
        match plan.Plan.root.Plan.op with
        | Plan.Union_op { trials; _ } ->
            Alcotest.(check int) "plan union trials" (Union.trials_for ~m:2 ~delta:0.1) trials
        | _ -> Alcotest.fail "root is not a union");
    t "intersection budget: runtime = Cost = plan attribute" (fun () ->
        List.iter
          (fun (dim, k, delta) ->
            Alcotest.(check int)
              (Printf.sprintf "dim=%d k=%d delta=%g" dim k delta)
              (Cost.rejection_budget ~dim ~poly_degree:k ~delta)
              (Inter.budget_for ~dim ~poly_degree:k ~delta))
          [ (1, 1, 0.1); (2, 1, 0.1); (3, 2, 0.05); (6, 2, 0.01) ];
        let plan =
          plan_of ~task:(Plan.Sample 1)
            (Plan.inter_ ~poly_degree:1 ~eps:0.2 ~delta:0.1 [ leaf (); leaf () ])
        in
        match plan.Plan.root.Plan.op with
        | Plan.Inter_op { budget; _ } ->
            Alcotest.(check int) "plan inter budget"
              (Inter.budget_for ~dim:2 ~poly_degree:1 ~delta:0.1)
              budget
        | _ -> Alcotest.fail "root is not an intersection");
    t "chernoff sizing: runtime = Cost" (fun () ->
        List.iter
          (fun (eps, delta) ->
            Alcotest.(check int)
              (Printf.sprintf "additive eps=%g delta=%g" eps delta)
              (Cost.samples_for_additive ~eps ~delta)
              (Chernoff.samples_for_additive ~eps ~delta);
            Alcotest.(check int)
              (Printf.sprintf "ratio eps=%g delta=%g" eps delta)
              (Cost.samples_for_ratio ~eps ~delta ~p_lower:0.25)
              (Chernoff.samples_for_ratio ~eps ~delta ~p_lower:0.25))
          [ (0.3, 0.2); (0.1, 0.1); (0.05, 0.01) ]);
    t "boost runs: runtime = Cost = plan attribute" (fun () ->
        List.iter
          (fun delta ->
            let n = Boost.runs_for ~delta in
            Alcotest.(check int) (Printf.sprintf "delta=%g" delta) (Cost.boost_runs ~delta) n;
            Alcotest.(check bool) "odd" true (n land 1 = 1))
          [ 0.2; 0.1; 0.01; 0.001 ];
        let plan = plan_of ~task:Plan.Volume (Plan.boost_ ~delta:0.1 (leaf ())) in
        match plan.Plan.root.Plan.op with
        | Plan.Boost_op { runs } ->
            Alcotest.(check int) "plan boost runs" (Boost.runs_for ~delta:0.1) runs
        | _ -> Alcotest.fail "root is not a boost");
    t "walk schedules: runtime = Cost = plan attribute" (fun () ->
        for dim = 1 to 8 do
          Alcotest.(check int)
            (Printf.sprintf "hit-and-run dim=%d" dim)
            (Cost.hit_and_run_steps ~dim) (HR.default_steps ~dim);
          Alcotest.(check int)
            (Printf.sprintf "lattice dim=%d" dim)
            (Cost.lattice_steps ~dim ~eps:0.2)
            (W.default_steps ~dim ~eps:0.2)
        done;
        let node = Plan.dfk ~eps:0.2 ~delta:0.1 ~dim:3 ~method_:"walk" () in
        match node.Plan.op with
        | Plan.Dfk { walk_steps; _ } ->
            Alcotest.(check int) "plan walk steps" (HR.default_steps ~dim:3) walk_steps
        | _ -> Alcotest.fail "not a dfk leaf");
  ]

(* ---------------- monotonicity ---------------- *)

let total ?(eps = 0.2) ?(delta = 0.1) ?(arity = 2) ?(dim = 2) task =
  let children = List.init arity (fun _ -> leaf ~eps:(eps /. 3.0) ~delta:(delta /. 4.0) ~dim ()) in
  let root =
    if arity = 1 then leaf ~eps ~delta ~dim () else Plan.union_ ~eps ~delta children
  in
  (plan_of ~eps ~delta ~task root).Plan.total_work

let check_nondecreasing name xs =
  List.iteri
    (fun i (label, w) ->
      if i > 0 then begin
        let _, prev = List.nth xs (i - 1) in
        if w < prev then
          Alcotest.fail (Printf.sprintf "%s: %s gives %g < previous %g" name label w prev)
      end)
    xs

let monotonicity_tests =
  [
    t "total work non-decreasing in 1/eps" (fun () ->
        check_nondecreasing "volume task, shrinking eps"
          (List.map
             (fun eps -> (Printf.sprintf "eps=%g" eps, total ~eps Plan.Volume))
             [ 0.5; 0.3; 0.2; 0.1; 0.05 ]));
    t "total work non-decreasing in ln(1/delta)" (fun () ->
        check_nondecreasing "sample task, shrinking delta"
          (List.map
             (fun delta -> (Printf.sprintf "delta=%g" delta, total ~delta (Plan.Sample 4)))
             [ 0.5; 0.2; 0.1; 0.01; 0.001 ]));
    t "total work non-decreasing in dimension" (fun () ->
        check_nondecreasing "sample task, growing dim"
          (List.map
             (fun dim -> (Printf.sprintf "dim=%d" dim, total ~dim (Plan.Sample 4)))
             [ 1; 2; 3; 5; 8 ]));
    t "total work non-decreasing in union arity" (fun () ->
        check_nondecreasing "sample task, growing arity"
          (List.map
             (fun arity -> (Printf.sprintf "arity=%d" arity, total ~arity (Plan.Sample 4)))
             [ 2; 3; 5; 9 ]));
    t "sample budget non-decreasing in n" (fun () ->
        check_nondecreasing "growing n"
          (List.map
             (fun n -> (Printf.sprintf "n=%d" n, total (Plan.Sample n)))
             [ 1; 10; 100 ]));
  ]

(* ---------------- JSON round trip ---------------- *)

let mixed_plan () =
  let a = leaf () and b = leaf ~dim:2 () in
  let g = Plan.grid_leaf ~dim:2 ~cells:400.0 in
  let u = Plan.union_ ~eps:0.2 ~delta:0.025 [ a; b; g ] in
  let d = Plan.diff_ ~eps:0.2 ~delta:0.1 u (Plan.guard ~dim:2) in
  plan_of ~task:(Plan.Report 10) d

let json_tests =
  [
    t "to_json parses and round-trips bit-exactly" (fun () ->
        let plan = mixed_plan () in
        let s = Plan.to_json plan in
        let doc = try J.parse s with J.Parse_error m -> Alcotest.fail ("parse: " ^ m) in
        (match J.to_string (Option.get (J.member "schema" doc)) with
        | Some schema -> Alcotest.(check string) "schema" Plan.schema schema
        | None -> Alcotest.fail "schema missing");
        match Plan.of_json doc with
        | Error m -> Alcotest.fail ("of_json: " ^ m)
        | Ok plan' ->
            Alcotest.(check int) "node_count" plan.Plan.node_count plan'.Plan.node_count;
            Alcotest.(check (float 0.0)) "total_work" plan.Plan.total_work plan'.Plan.total_work;
            Array.iteri
              (fun i b ->
                Alcotest.(check (float 0.0))
                  (Printf.sprintf "budget[%d]" i)
                  b
                  plan'.Plan.budgets.(i))
              plan.Plan.budgets;
            Alcotest.(check string) "re-emission is identical" s (Plan.to_json plan'));
    t "of_json rejects a broken document" (fun () ->
        let bad = J.parse {|{"schema": "spatialdb-plan/1", "task": "sample"}|} in
        match Plan.of_json bad with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted a document without a root");
    t "budget rows cover every node exactly once" (fun () ->
        let plan = mixed_plan () in
        let rows = Plan.budget_rows plan in
        Alcotest.(check int) "row count" plan.Plan.node_count (Array.length rows);
        Array.iteri
          (fun i (id, name, w) ->
            Alcotest.(check int) "dense ids" i id;
            Alcotest.(check bool) "named" true (name <> "");
            Alcotest.(check bool) "finite budget" true (Float.is_finite w && w >= 0.0))
          rows);
  ]

let suites =
  [
    ("plan.budget_equality", equality_tests);
    ("plan.monotonicity", monotonicity_tests);
    ("plan.json", json_tests);
  ]
