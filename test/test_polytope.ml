(* Tests for H-polytopes, exact volumes, 2-D geometry and grid volumes. *)

module P = Scdb_polytope.Polytope
module VE = Scdb_polytope.Volume_exact
module P2 = Scdb_polytope.Polygon2d
module GV = Scdb_polytope.Gridvol
module Rng = Scdb_rng.Rng
module Q = Rational

let t name f = Alcotest.test_case name `Quick f

let qt ?(count = 50) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let q = Q.of_int
let feq = Alcotest.(check (float 1e-7))

let polytope_tests =
  [
    t "membership and violation" (fun () ->
        let c = P.unit_cube 3 in
        Alcotest.(check bool) "centre" true (P.mem c [| 0.5; 0.5; 0.5 |]);
        Alcotest.(check bool) "outside" false (P.mem c [| 1.1; 0.5; 0.5 |]);
        feq "violation inside" (-0.5) (P.violation c [| 0.5; 0.5; 0.5 |]);
        feq "violation outside" 0.1 (P.violation c [| 1.1; 0.5; 0.5 |]));
    t "chebyshev of cube" (fun () ->
        match P.chebyshev (P.cube 3 2.0) with
        | Some (centre, r) ->
            feq "radius" 2.0 r;
            Alcotest.(check bool) "centre" true (Vec.equal_eps 1e-7 [| 0.; 0.; 0. |] centre)
        | None -> Alcotest.fail "expected centre");
    t "bounding box" (fun () ->
        match P.bounding_box (P.simplex 2) with
        | Some (lo, hi) ->
            Alcotest.(check bool) "lo" true (Vec.equal_eps 1e-7 [| 0.; 0. |] lo);
            Alcotest.(check bool) "hi" true (Vec.equal_eps 1e-7 [| 1.; 1. |] hi)
        | None -> Alcotest.fail "expected box");
    t "boundedness and emptiness" (fun () ->
        let halfspace = P.make ~dim:2 [| [| 1.; 0. |] |] [| 0. |] in
        Alcotest.(check bool) "unbounded" false (P.is_bounded halfspace);
        Alcotest.(check bool) "nonempty" false (P.is_empty halfspace);
        let empty = P.make ~dim:1 [| [| 1. |]; [| -1. |] |] [| -1.; -1. |] in
        Alcotest.(check bool) "empty" true (P.is_empty empty));
    t "transform maps set correctly" (fun () ->
        let c = P.unit_cube 2 in
        let f = Option.get (Affine.make [| [| 2.; 0. |]; [| 0.; 1. |] |] [| 1.; 0. |]) in
        let tc = P.transform f c in
        (* image of [0,1]^2 is [1,3]x[0,1] *)
        Alcotest.(check bool) "in" true (P.mem tc [| 2.0; 0.5 |]);
        Alcotest.(check bool) "out" false (P.mem tc [| 0.5; 0.5 |]);
        Alcotest.(check bool) "boundary" true (P.mem ~slack:1e-9 tc [| 1.0; 0.0 |]));
    t "line intersection" (fun () ->
        let c = P.cube 2 1.0 in
        (match P.line_intersection c [| 0.; 0. |] [| 1.; 0. |] with
        | Some (lo, hi) ->
            feq "lo" (-1.0) lo;
            feq "hi" 1.0 hi
        | None -> Alcotest.fail "expected chord");
        match P.line_intersection c [| 5.; 0. |] [| 0.; 1. |] with
        | None -> ()
        | Some _ -> Alcotest.fail "expected miss");
    t "sandwich witnesses" (fun () ->
        match P.sandwich (P.cube 2 1.0) with
        | Some (_, r_inf, r_sup) ->
            feq "r_inf" 1.0 r_inf;
            Alcotest.(check bool) "r_sup" true (Float.abs (r_sup -. sqrt 2.0) < 1e-6)
        | None -> Alcotest.fail "expected sandwich");
    t "of_tuple equalities become two rows" (fun () ->
        let tuple = [ Atom.eq (Term.var 0) (Term.const Q.one) ] in
        let p = P.of_tuple ~dim:1 tuple in
        Alcotest.(check int) "rows" 2 (P.num_constraints p));
  ]

let exact_volume_tests =
  [
    t "cube volumes" (fun () ->
        for d = 1 to 5 do
          Alcotest.(check string) (Printf.sprintf "unit cube %dD" d) "1"
            (Q.to_string (VE.volume_relation (Relation.unit_cube d)))
        done);
    t "simplex 1/d!" (fun () ->
        for d = 1 to 5 do
          let fact = List.fold_left ( * ) 1 (List.init d (fun i -> i + 1)) in
          Alcotest.(check string) (Printf.sprintf "simplex %dD" d)
            (Q.to_string (Q.of_ints 1 fact))
            (Q.to_string (VE.volume_relation (Relation.standard_simplex d)))
        done);
    t "cross polytope (2r)^d/d!" (fun () ->
        for d = 1 to 4 do
          let fact = List.fold_left ( * ) 1 (List.init d (fun i -> i + 1)) in
          let expected = Q.div (Q.pow (q 6) d) (q fact) in
          Alcotest.(check string) (Printf.sprintf "cross %dD" d) (Q.to_string expected)
            (Q.to_string (VE.volume_relation (Relation.cross_polytope d (q 3))))
        done);
    t "inclusion-exclusion on overlapping boxes" (fun () ->
        let b1 = Relation.box [| q 0; q 0 |] [| q 2; q 1 |] in
        let b2 = Relation.box [| q 1; q 0 |] [| q 3; q 1 |] in
        Alcotest.(check string) "union" "3" (Q.to_string (VE.volume_relation (Relation.union b1 b2)));
        Alcotest.(check string) "inter" "1" (Q.to_string (VE.volume_relation (Relation.inter b1 b2)));
        Alcotest.(check string) "diff" "1" (Q.to_string (VE.volume_relation (Relation.diff b1 b2))));
    t "empty and degenerate are zero" (fun () ->
        let r = Parser.parse_relation ~vars:[ "x"; "y" ] "x <= 0 /\\ x >= 1 /\\ 0 <= y <= 1" in
        Alcotest.(check string) "empty" "0" (Q.to_string (VE.volume_relation r));
        let flat = Parser.parse_relation ~vars:[ "x"; "y" ] "x = 0 /\\ 0 <= y <= 1" in
        Alcotest.(check string) "flat" "0" (Q.to_string (VE.volume_relation flat)));
    t "unbounded raises" (fun () ->
        Alcotest.check_raises "unbounded" VE.Unbounded (fun () ->
            ignore (VE.volume_relation (Relation.halfspace ~dim:2 (Term.var 0)))));
    t "rotated diamond" (fun () ->
        let dia =
          Parser.parse_relation ~vars:[ "x"; "y" ]
            "x + y <= 1 /\\ x - y <= 1 /\\ -x + y <= 1 /\\ -x - y <= 1"
        in
        Alcotest.(check string) "area 2" "2" (Q.to_string (VE.volume_relation dia)));
    t "duplicate constraints do not double count" (fun () ->
        let r =
          Parser.parse_relation ~vars:[ "x" ] "0 <= x /\\ x <= 1 /\\ x <= 1 /\\ 2*x <= 2"
        in
        Alcotest.(check string) "still 1" "1" (Q.to_string (VE.volume_relation r)));
    t "too many tuples guarded" (fun () ->
        let slab i = Relation.box [| q i |] [| q (i + 1) |] in
        let r = List.fold_left (fun acc i -> Relation.union acc (slab i)) (slab 0) (List.init 20 Fun.id) in
        try
          ignore (VE.volume_relation r);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    qt "scaling law vol(sK) = s^d vol(K)" (QCheck.make QCheck.Gen.(int_range 1 10_000)) (fun seed ->
        let rng = Rng.create seed in
        let d = 1 + Rng.int rng 3 in
        let s = 1 + Rng.int rng 4 in
        let base = Relation.standard_simplex d in
        (* scale by substituting x_i -> x_i / s in each atom *)
        let scaled =
          Relation.make ~dim:d
            (List.map
               (List.map (fun (a : Atom.t) ->
                    Atom.make
                      (List.fold_left
                         (fun te (i, c) -> Term.add te (Term.monomial (Q.div c (q s)) i))
                         (Term.const (Term.constant a.Atom.term))
                         (Term.coeffs a.Atom.term))
                      a.Atom.op))
               (Relation.tuples base))
        in
        let v0 = VE.volume_relation base and v1 = VE.volume_relation scaled in
        Q.equal v1 (Q.mul v0 (Q.pow (q s) d)));
  ]

let polygon_tests =
  [
    qt "affine transform scales area by |det|" (QCheck.make QCheck.Gen.(int_range 0 100_000)) (fun seed ->
        let rng = Rng.create seed in
        let mat = Array.init 2 (fun _ -> Array.init 2 (fun _ -> Rng.uniform rng (-2.0) 2.0)) in
        QCheck.assume (Float.abs (Mat.det mat) > 0.1);
        let offset = [| Rng.uniform rng (-3.0) 3.0; Rng.uniform rng (-3.0) 3.0 |] in
        match Affine.make mat offset with
        | None -> QCheck.assume_fail ()
        | Some f ->
            let p = P.unit_cube 2 in
            let area_before = P2.area p in
            let area_after = P2.area (P.transform f p) in
            Float.abs (area_after -. (Affine.volume_scale f *. area_before)) < 1e-6);
    t "triangle vertices and area" (fun () ->
        let tri = P.simplex 2 in
        Alcotest.(check int) "3 vertices" 3 (List.length (P2.vertices tri));
        feq "area" 0.5 (P2.area tri);
        feq "perimeter" (2.0 +. sqrt 2.0) (P2.perimeter tri));
    t "square centroid" (fun () ->
        match P2.centroid (P.unit_cube 2) with
        | Some c -> Alcotest.(check bool) "centre" true (Vec.equal_eps 1e-7 [| 0.5; 0.5 |] c)
        | None -> Alcotest.fail "expected centroid");
    t "degenerate polygon" (fun () ->
        let flat =
          P.make ~dim:2 [| [| 1.; 0. |]; [| -1.; 0. |]; [| 0.; 1. |]; [| 0.; -1. |] |] [| 0.; 0.; 1.; 0. |]
        in
        feq "area 0" 0.0 (P2.area flat));
    t "area agrees with exact volume" (fun () ->
        let rng = Rng.create 42 in
        for _ = 1 to 20 do
          (* random bounded 2D polytope: cube ∩ random halfplanes *)
          let atoms = ref (List.concat (Relation.tuples (Relation.cube 2 (q 2)))) in
          for _ = 1 to 4 do
            let te =
              Term.make
                [ (0, q (Rng.int rng 5 - 2)); (1, q (Rng.int rng 5 - 2)) ]
                (q (-1 - Rng.int rng 2))
            in
            atoms := Atom.make te Atom.Le :: !atoms
          done;
          let r = Relation.make ~dim:2 [ !atoms ] in
          let exact = Q.to_float (VE.volume_relation r) in
          let poly = P.of_tuple ~dim:2 (List.hd (Relation.tuples r)) in
          Alcotest.(check (float 1e-5)) "agree" exact (P2.area poly)
        done);
  ]

let gridvol_tests =
  [
    t "volume converges with gamma" (fun () ->
        let tri = Relation.standard_simplex 2 in
        let coarse = Option.get (GV.build ~gamma:0.2 tri) in
        let fine = Option.get (GV.build ~gamma:0.01 tri) in
        Alcotest.(check bool) "coarse rough" true (Float.abs (GV.volume coarse -. 0.5) < 0.15);
        Alcotest.(check bool) "fine close" true (Float.abs (GV.volume fine -. 0.5) < 0.02));
    t "cells_scanned is the (R/gamma)^d cost" (fun () ->
        let b = Relation.unit_cube 2 in
        let g = Option.get (GV.build ~gamma:0.1 b) in
        Alcotest.(check bool) "scanned >= 100" true (GV.cells_scanned g >= 100));
    t "sampling stays in relation and covers components" (fun () ->
        let rng = Rng.create 5 in
        let b = Relation.union (Relation.box [| q 0 |] [| q 1 |]) (Relation.box [| q 2 |] [| q 3 |]) in
        let g = Option.get (GV.build ~gamma:0.05 b) in
        let low = ref 0 in
        let n = 4000 in
        for _ = 1 to n do
          let x = GV.sample g rng in
          Alcotest.(check bool) "member-ish" true (x.(0) < 1.05 || x.(0) > 1.95);
          if x.(0) < 1.5 then incr low
        done;
        Alcotest.(check bool) "balanced across components" true (abs (!low - (n / 2)) < 200));
    t "empty relation" (fun () ->
        let r = Parser.parse_relation ~vars:[ "x" ] "x <= 0 /\\ x >= 1" in
        Alcotest.(check bool) "none" true (Option.is_none (GV.build ~gamma:0.1 r)));
    t "unbounded relation" (fun () ->
        Alcotest.(check bool) "none" true
          (Option.is_none (GV.build ~gamma:0.1 (Relation.halfspace ~dim:1 (Term.var 0)))));
    t "cell budget guard" (fun () ->
        let b = Relation.unit_cube 4 in
        try
          ignore (GV.build ~gamma:0.001 b);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
  ]

let kernel_tests =
  [
    t "empty constraint system is all of R^d" (fun () ->
        (* Regression: [violation] must short-circuit the m = 0 case
           before touching any row. *)
        let p = P.make ~dim:2 [||] [||] in
        Alcotest.(check (float 0.0)) "violation" 0.0 (P.violation p [| 3.0; -4.0 |]);
        Alcotest.(check bool) "mem" true (P.mem p [| 3.0; -4.0 |]);
        (match P.line_intersection p [| 0.0; 0.0 |] [| 1.0; 0.0 |] with
        | Some (lo, hi) ->
            Alcotest.(check bool) "unbounded chord" true (lo = neg_infinity && hi = infinity)
        | None -> Alcotest.fail "expected a chord");
        let cur = P.Kernel.make p [| 1.0; 1.0 |] in
        Alcotest.(check bool) "kernel inside" true (P.Kernel.inside cur);
        Alcotest.(check (float 0.0)) "kernel violation" 0.0 (P.Kernel.violation cur));
    t "kernel chord agrees with line_intersection" (fun () ->
        let rng = Rng.create 21 in
        let poly = ref (P.cube 5 1.0) in
        for _ = 1 to 12 do
          poly := P.add_halfspace !poly (Rng.unit_vector rng 5) 0.7
        done;
        let poly = !poly in
        let x = Array.make 5 0.1 in
        let cur = P.Kernel.make poly x in
        for _ = 1 to 50 do
          let dir = Rng.unit_vector rng 5 in
          match (P.line_intersection poly x dir, P.Kernel.chord cur dir) with
          | Some (lo, hi), true ->
              Alcotest.(check (float 1e-9)) "lo" lo (P.Kernel.lo cur);
              Alcotest.(check (float 1e-9)) "hi" hi (P.Kernel.hi cur)
          | None, false -> ()
          | Some _, false -> Alcotest.fail "kernel missed a chord"
          | None, true -> Alcotest.fail "kernel invented a chord"
        done);
    t "cached products stay coherent across advances" (fun () ->
        let rng = Rng.create 22 in
        let poly = ref (P.cube 4 1.0) in
        for _ = 1 to 8 do
          poly := P.add_halfspace !poly (Rng.unit_vector rng 4) 0.9
        done;
        let poly = !poly in
        let cur = P.Kernel.make poly (Vec.create 4) in
        for _ = 1 to 200 do
          let dir = Rng.unit_vector rng 4 in
          if P.Kernel.chord cur dir then begin
            let lo = P.Kernel.lo cur and hi = P.Kernel.hi cur in
            if Float.is_finite lo && Float.is_finite hi && hi > lo then
              P.Kernel.advance cur dir (0.5 *. (lo +. hi))
          end
        done;
        let x = P.Kernel.pos cur in
        let ax = P.Kernel.products cur in
        Array.iteri
          (fun i row ->
            Alcotest.(check (float 1e-9)) (Printf.sprintf "row %d" i) (Vec.dot row x) ax.(i))
          poly.P.a;
        Alcotest.(check (float 1e-9)) "violation" (P.violation poly x) (P.Kernel.violation cur));
    t "try_set_coord accepts inside and rejects outside" (fun () ->
        let poly = P.cube 3 1.0 in
        let cur = P.Kernel.make poly (Vec.create 3) in
        Alcotest.(check bool) "inside move" true (P.Kernel.try_set_coord cur 0 0.5);
        Alcotest.(check bool) "outside move" false (P.Kernel.try_set_coord cur 0 1.5);
        let x = P.Kernel.pos cur in
        Alcotest.(check (float 0.0)) "kept accepted move" 0.5 x.(0);
        Alcotest.(check bool) "still inside" true (P.Kernel.inside cur);
        Alcotest.check_raises "coordinate out of range"
          (Invalid_argument "Polytope.Kernel.try_set_coord: coordinate out of range") (fun () ->
            ignore (P.Kernel.try_set_coord cur 3 0.0)));
  ]

let suites =
  [
    ("polytope.hrep", polytope_tests);
    ("polytope.kernel", kernel_tests);
    ("polytope.volume_exact", exact_volume_tests);
    ("polytope.polygon2d", polygon_tests);
    ("polytope.gridvol", gridvol_tests);
  ]
