(* Tests for the paper's core: observables and their algebra. *)

open Scdb_core
module P = Scdb_polytope.Polytope
module VE = Scdb_polytope.Volume_exact
module Rng = Scdb_rng.Rng
module Q = Rational

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let q = Q.of_int
let cfg = Convex_obs.practical_config
let params = Params.make ~gamma:0.05 ~eps:0.15 ~delta:0.1 ()

let params_tests =
  [
    t "validation" (fun () ->
        List.iter
          (fun f -> try ignore (f ()); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> ())
          [
            (fun () -> Params.make ~eps:0.0 ());
            (fun () -> Params.make ~eps:1.0 ());
            (fun () -> Params.make ~gamma:(-0.1) ());
            (fun () -> Params.make ~delta:2.0 ());
          ]);
    t "with_cached_volume calls the base estimator once per (eps,delta)" (fun () ->
        let calls = ref 0 in
        let dummy =
          Observable.make ~dim:1
            ~mem:(fun _ -> true)
            ~sample:(fun _ _ -> None)
            ~volume:(fun _ ~gamma:_ ~eps:_ ~delta:_ -> incr calls; 1.0)
            ()
        in
        let cached = Observable.with_cached_volume dummy in
        let rng = Rng.create 0 in
        ignore (Observable.volume cached rng ~eps:0.1 ~delta:0.1);
        ignore (Observable.volume cached rng ~eps:0.1 ~delta:0.1);
        ignore (Observable.volume cached rng ~eps:0.2 ~delta:0.1);
        Alcotest.(check int) "two distinct keys" 2 !calls);
    t "sample_exn raises after exhausting retries" (fun () ->
        let dummy =
          Observable.make ~dim:1
            ~mem:(fun _ -> true)
            ~sample:(fun _ _ -> None)
            ~volume:(fun _ ~gamma:_ ~eps:_ ~delta:_ -> 1.0)
            ()
        in
        try
          ignore (Observable.sample_exn dummy (Rng.create 0) params);
          Alcotest.fail "expected Estimation_failed"
        with Observable.Estimation_failed _ -> ());
    t "make rejects relation dimension mismatch" (fun () ->
        try
          ignore
            (Observable.make ~relation:(Relation.unit_cube 2) ~dim:3
               ~mem:(fun _ -> true)
               ~sample:(fun _ _ -> None)
               ~volume:(fun _ ~gamma:_ ~eps:_ ~delta:_ -> 0.0)
               ());
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "third_eps" (fun () ->
        let p = Params.make ~eps:0.3 () in
        Alcotest.(check (float 1e-12)) "eps/3" 0.1 (Params.eps (Params.third_eps p));
        Alcotest.(check (float 1e-12)) "gamma kept" (Params.gamma p) (Params.gamma (Params.third_eps p)));
  ]

let convex_tests =
  [
    ts "DFK base case: generator and estimator on a box" (fun () ->
        let rng = Rng.create 20 in
        let r = Relation.box [| q 0; q 0 |] [| q 2; q 1 |] in
        match Convex_obs.make ~config:cfg rng r with
        | None -> Alcotest.fail "expected observable"
        | Some o ->
            Alcotest.(check int) "dim" 2 (Observable.dim o);
            (* volume *)
            let v = Observable.volume o rng ~eps:0.2 ~delta:0.2 in
            Alcotest.(check bool) "volume" true (Float.abs (v -. 2.0) < 0.3);
            (* samples in relation, left/right halves balanced *)
            let n = 600 in
            let left = ref 0 in
            for _ = 1 to n do
              let x = Observable.sample_exn o rng params in
              Alcotest.(check bool) "member" true (Relation.mem_float ~slack:1e-6 r x);
              if x.(0) < 1.0 then incr left
            done;
            Alcotest.(check bool) "balanced" true (abs (!left - (n / 2)) < 90));
    t "empty relation refuses" (fun () ->
        let r = Parser.parse_relation ~vars:[ "x" ] "x <= 0 /\\ x >= 1" in
        Alcotest.(check bool) "none" true (Option.is_none (Convex_obs.make (Rng.create 0) r)));
    t "unbounded relation refuses" (fun () ->
        Alcotest.(check bool) "none" true
          (Option.is_none (Convex_obs.make (Rng.create 0) (Relation.halfspace ~dim:1 (Term.var 0)))));
    t "multi-tuple relation rejected" (fun () ->
        let r = Relation.union (Relation.unit_cube 1) (Relation.box [| q 2 |] [| q 3 |]) in
        try
          ignore (Convex_obs.make (Rng.create 0) r);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "grid-walk generator outputs grid points of the rounded body" (fun () ->
        let rng = Rng.create 21 in
        let r = Relation.unit_cube 2 in
        let o = Option.get (Convex_obs.make ~config:Convex_obs.default_config rng r) in
        (* just check generation succeeds and lands inside *)
        let x = Observable.sample_exn o rng params in
        Alcotest.(check bool) "inside" true (Relation.mem_float ~slack:1e-6 r x));
  ]

let union_tests =
  [
    ts "Algorithm 1: union volume and per-operand balance" (fun () ->
        let rng = Rng.create 22 in
        (* disjoint boxes of areas 1 and 3: samples must split 1:3 *)
        let a = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 0; q 0 |] [| q 1; q 1 |])) in
        let b = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 2; q 0 |] [| q 5; q 1 |])) in
        let u = Union.union2 a b in
        let v = Observable.volume u rng ~eps:0.2 ~delta:0.2 in
        Alcotest.(check bool) "volume 4" true (Float.abs (v -. 4.0) < 0.5);
        let n = 800 in
        let in_a = ref 0 in
        for _ = 1 to n do
          let x = Observable.sample_exn u rng params in
          if x.(0) <= 1.0 then incr in_a
        done;
        Alcotest.(check bool)
          (Printf.sprintf "1:3 split (got %d/%d)" !in_a n)
          true
          (Float.abs ((float_of_int !in_a /. float_of_int n) -. 0.25) < 0.06));
    ts "overlap counted once" (fun () ->
        let rng = Rng.create 23 in
        let a = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 0 |] [| q 2 |])) in
        let b = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 1 |] [| q 3 |])) in
        let v = Observable.volume (Union.union2 a b) rng ~eps:0.15 ~delta:0.2 in
        Alcotest.(check bool) "3 not 4" true (Float.abs (v -. 3.0) < 0.35));
    ts "m-ary union (Corollary 4.2)" (fun () ->
        let rng = Rng.create 24 in
        let slab i =
          Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q (2 * i) |] [| q ((2 * i) + 1) |]))
        in
        let u = Union.union (List.init 5 slab) in
        let v = Observable.volume u rng ~eps:0.2 ~delta:0.2 in
        Alcotest.(check bool) "volume 5" true (Float.abs (v -. 5.0) < 0.6);
        (* samples must reach every component *)
        let seen = Array.make 5 false in
        for _ = 1 to 300 do
          let x = Observable.sample_exn u rng params in
          seen.(int_of_float x.(0) / 2) <- true
        done;
        Alcotest.(check bool) "all components hit" true (Array.for_all Fun.id seen));
    t "mixed dimensions rejected" (fun () ->
        let rng = Rng.create 0 in
        let a = Option.get (Convex_obs.make ~config:cfg rng (Relation.unit_cube 1)) in
        let b = Option.get (Convex_obs.make ~config:cfg rng (Relation.unit_cube 2)) in
        try
          ignore (Union.union2 a b);
          Alcotest.fail "expected Invalid_argument"
        with Invalid_argument _ -> ());
    t "trials_for grows with m and 1/delta" (fun () ->
        Alcotest.(check bool) "monotone m" true (Union.trials_for ~m:10 ~delta:0.1 > Union.trials_for ~m:2 ~delta:0.1);
        Alcotest.(check bool) "monotone delta" true
          (Union.trials_for ~m:2 ~delta:0.001 > Union.trials_for ~m:2 ~delta:0.5));
    t "volume passes the caller's gamma to child generators" (fun () ->
        (* Regression: the Karp–Luby acceptance trials used to run at a
           hard-coded gamma = 0.1, so the volume path discretized on a
           different grid than the sample path whenever the caller asked
           for another resolution. *)
        let seen_gammas = ref [] in
        let child =
          Observable.make ~dim:1
            ~mem:(fun _ -> true)
            ~sample:(fun _ p ->
              seen_gammas := Params.gamma p :: !seen_gammas;
              Some [| 0.5 |])
            ~volume:(fun _ ~gamma:_ ~eps:_ ~delta:_ -> 1.0)
            ()
        in
        let u = Union.union [ child ] in
        let rng = Rng.create 7 in
        ignore (Observable.volume u ~gamma:0.37 rng ~eps:0.5 ~delta:0.2);
        Alcotest.(check bool) "trials ran" true (!seen_gammas <> []);
        List.iter
          (fun g -> Alcotest.(check (float 1e-12)) "caller's gamma, not 0.1" 0.37 g)
          !seen_gammas;
        (* And with gamma left to default, children see the 0.1 default. *)
        seen_gammas := [];
        ignore (Observable.volume u rng ~eps:0.5 ~delta:0.2);
        List.iter
          (fun g -> Alcotest.(check (float 1e-12)) "default gamma" 0.1 g)
          !seen_gammas);
    t "cached volume distinguishes gamma" (fun () ->
        let calls = ref 0 in
        let dummy =
          Observable.make ~dim:1
            ~mem:(fun _ -> true)
            ~sample:(fun _ _ -> None)
            ~volume:(fun _ ~gamma:_ ~eps:_ ~delta:_ -> incr calls; 1.0)
            ()
        in
        let cached = Observable.with_cached_volume dummy in
        let rng = Rng.create 0 in
        ignore (Observable.volume cached ~gamma:0.1 rng ~eps:0.1 ~delta:0.1);
        ignore (Observable.volume cached ~gamma:0.4 rng ~eps:0.1 ~delta:0.1);
        ignore (Observable.volume cached ~gamma:0.4 rng ~eps:0.1 ~delta:0.1);
        Alcotest.(check int) "gamma is part of the key" 2 !calls);
    t "Karp-Luby zero acceptance is flagged, not silently zero" (fun () ->
        (* Children that claim positive volume but whose generators
           always fail drive the acceptance count to 0: the estimate
           degrades to 0.0 with no statistical backing, which must be
           recorded as a generator failure rather than a small volume. *)
        let module Tel = Scdb_telemetry.Telemetry in
        let broken =
          Observable.make ~dim:1
            ~mem:(fun _ -> true)
            ~sample:(fun _ _ -> None)
            ~volume:(fun _ ~gamma:_ ~eps:_ ~delta:_ -> 1.0)
            ()
        in
        let u = Union.union [ broken; broken ] in
        let was = Tel.enabled () in
        Tel.set_enabled true;
        Tel.reset ();
        Fun.protect ~finally:(fun () -> Tel.set_enabled was) @@ fun () ->
        let v = Observable.volume u (Rng.create 5) ~eps:0.3 ~delta:0.3 in
        Alcotest.(check (float 0.0)) "degraded estimate" 0.0 v;
        Alcotest.(check (option int))
          "union.volume.zero_acceptance incremented" (Some 1)
          (Tel.counter_value "union.volume.zero_acceptance"));
  ]

let inter_diff_tests =
  [
    ts "Proposition 4.1: poly-related intersection" (fun () ->
        let rng = Rng.create 25 in
        let a = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 0; q 0 |] [| q 2; q 1 |])) in
        let b = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 1; q 0 |] [| q 3; q 1 |])) in
        let it = Inter.inter2 a b in
        let v = Observable.volume it rng ~eps:0.15 ~delta:0.2 in
        Alcotest.(check bool) "volume 1" true (Float.abs (v -. 1.0) < 0.2);
        let x = Observable.sample_exn it rng params in
        Alcotest.(check bool) "in both" true (x.(0) >= 1.0 -. 1e-6 && x.(0) <= 2.0 +. 1e-6));
    ts "thin intersection fails gracefully (condition violated)" (fun () ->
        let rng = Rng.create 26 in
        (* overlap of width 1e-4 out of boxes of size 1: not poly-related for k=2 *)
        let a = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 0 |] [| Q.of_string "1.0001" |])) in
        let b = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 1 |] [| q 2 |])) in
        let it = Inter.inter ~poly_degree:1 [ a; b ] in
        (* generator should mostly fail: None is the documented outcome *)
        let fails = ref 0 in
        for _ = 1 to 5 do
          if Option.is_none (Observable.sample it rng params) then incr fails
        done;
        Alcotest.(check bool) "mostly fails" true (!fails >= 3));
    ts "Proposition 4.2: difference" (fun () ->
        let rng = Rng.create 27 in
        let a = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 0 |] [| q 3 |])) in
        let b = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 1 |] [| q 2 |])) in
        let d = Diff.diff a b in
        let v = Observable.volume d rng ~eps:0.15 ~delta:0.2 in
        Alcotest.(check bool) "volume 2" true (Float.abs (v -. 2.0) < 0.3);
        (* samples in both components of the (disconnected!) difference *)
        let low = ref 0 and high = ref 0 in
        for _ = 1 to 200 do
          let x = Observable.sample_exn d rng params in
          Alcotest.(check bool) "outside b" true (x.(0) <= 1.0 +. 1e-6 || x.(0) >= 2.0 -. 1e-6);
          if x.(0) < 1.5 then incr low else incr high
        done;
        Alcotest.(check bool) "both components" true (!low > 40 && !high > 40));
  ]

let project_tests =
  [
    ts "Theorem 4.3: compensated projection is uniform" (fun () ->
        let rng = Rng.create 28 in
        let tri = P.simplex 2 in
        let proj = Option.get (Project.project rng tri ~keep:[ 0 ]) in
        let n = 800 in
        let mean = ref 0.0 in
        for _ = 1 to n do
          let y = Observable.sample_exn proj rng params in
          mean := !mean +. y.(0)
        done;
        (* uniform on [0,1] has mean 1/2; the naive projection has 1/3 *)
        Alcotest.(check bool) "mean 1/2" true (Float.abs ((!mean /. float_of_int n) -. 0.5) < 0.05));
    ts "naive projection is biased (Fig. 1)" (fun () ->
        let rng = Rng.create 29 in
        let tri = P.simplex 2 in
        let obs = Option.get (Convex_obs.of_polytope ~config:cfg rng tri) in
        let n = 800 in
        let mean = ref 0.0 in
        for _ = 1 to n do
          match Project.naive_projection_sample rng obs ~keep:[ 0 ] params with
          | Some y -> mean := !mean +. y.(0)
          | None -> Alcotest.fail "unexpected failure"
        done;
        Alcotest.(check bool) "mean 1/3" true (Float.abs ((!mean /. float_of_int n) -. (1.0 /. 3.0)) < 0.05));
    ts "projection volume via fiber identity" (fun () ->
        let rng = Rng.create 30 in
        (* project box [0,1]x[0,2]x[0,3] to first coordinate: length 1 *)
        let b = P.box [| 0.; 0.; 0. |] [| 1.; 2.; 3. |] in
        let proj = Option.get (Project.project rng b ~keep:[ 0 ]) in
        let v = Observable.volume proj rng ~eps:0.25 ~delta:0.25 in
        Alcotest.(check bool) "length 1" true (Float.abs (v -. 1.0) < 0.25));
    t "fiber computation" (fun () ->
        let b = P.box [| 0.; 0. |] [| 2.; 1. |] in
        let f = Project.fiber b ~keep:[ 0 ] [| 0.5 |] in
        Alcotest.(check int) "dim" 1 (P.dim f);
        Alcotest.(check bool) "inside" true (P.mem f [| 0.5 |]);
        Alcotest.(check bool) "outside" false (P.mem f [| 1.5 |]));
    t "fiber volume exact mode" (fun () ->
        let rng = Rng.create 0 in
        let b = P.box [| 0.; 0.; 0. |] [| 1.; 2.; 3. |] in
        let h = Project.fiber_volume_of ~fiber_volume:Project.Exact rng b ~keep:[ 0 ] [| 0.5 |] in
        Alcotest.(check (float 1e-9)) "2*3" 6.0 h);
    t "membership of projection via LP" (fun () ->
        let rng = Rng.create 31 in
        let tri = P.simplex 2 in
        let proj = Option.get (Project.project rng tri ~keep:[ 0 ]) in
        Alcotest.(check bool) "0.5 in" true (Observable.mem proj [| 0.5 |]);
        Alcotest.(check bool) "1.5 out" false (Observable.mem proj [| 1.5 |]));
    t "bad keep arguments" (fun () ->
        let rng = Rng.create 0 in
        List.iter
          (fun keep ->
            try
              ignore (Project.project rng (P.unit_cube 2) ~keep);
              Alcotest.fail "expected Invalid_argument"
            with Invalid_argument _ -> ())
          [ []; [ 0; 1 ]; [ 5 ] ]);
  ]

let fixed_dim_tests =
  [
    t "Theorem 3.1: disconnected relation observable in fixed dim" (fun () ->
        let rng = Rng.create 32 in
        let r = Relation.union (Relation.box [| q 0 |] [| q 1 |]) (Relation.box [| q 3 |] [| q 5 |]) in
        let o = Option.get (Fixed_dim.observable r) in
        let v = Observable.volume o rng ~eps:0.02 ~delta:0.1 in
        Alcotest.(check bool) "volume 3" true (Float.abs (v -. 3.0) < 0.1);
        let low = ref 0 in
        let n = 1200 in
        for _ = 1 to n do
          let x = Observable.sample_exn o rng params in
          Alcotest.(check bool) "member" true (Relation.mem_float ~slack:0.1 r x);
          if x.(0) < 2.0 then incr low
        done;
        (* component masses 1 and 2 *)
        Alcotest.(check bool) "1:2 split" true
          (Float.abs ((float_of_int !low /. float_of_int n) -. (1.0 /. 3.0)) < 0.06));
    t "exact volume matches" (fun () ->
        let r = Relation.union (Relation.box [| q 0 |] [| q 1 |]) (Relation.box [| q 3 |] [| q 5 |]) in
        Alcotest.(check string) "3" "3" (Q.to_string (Fixed_dim.exact_volume r)));
    t "empty gives none" (fun () ->
        let r = Parser.parse_relation ~vars:[ "x" ] "x <= 0 /\\ x >= 1" in
        Alcotest.(check bool) "none" true (Option.is_none (Fixed_dim.observable r)));
  ]

let reconstruct_tests =
  [
    ts "Lemma 4.1: hull error shrinks with N" (fun () ->
        let rng = Rng.create 33 in
        let tri = P.simplex 2 in
        let obs = Option.get (Convex_obs.of_polytope ~config:cfg rng tri) in
        let sd n =
          let r = Reconstruct.convex_hull_estimate rng obs ~n in
          Reconstruct.symmetric_difference_mc rng ~samples:6000 r
            (fun x -> P.mem tri x)
            ~lo:[| 0.; 0. |] ~hi:[| 1.; 1. |]
        in
        let e1 = sd 30 and e2 = sd 300 in
        Alcotest.(check bool) (Printf.sprintf "monotone: %.4f -> %.4f" e1 e2) true (e2 < e1);
        Alcotest.(check bool) "small at n=300" true (e2 < 0.05));
    t "lemma41 bound monotone in eps" (fun () ->
        let n1 = Reconstruct.samples_for_lemma41 ~eps:0.2 ~delta:0.1 ~dim:3 ~vertices:8 in
        let n2 = Reconstruct.samples_for_lemma41 ~eps:0.1 ~delta:0.1 ~dim:3 ~vertices:8 in
        Alcotest.(check bool) "monotone" true (n2 > n1));
    ts "union of hulls for a disconnected set (Algorithm 5)" (fun () ->
        let rng = Rng.create 34 in
        let p1 = Relation.box [| q 0; q 0 |] [| q 1; q 1 |] in
        let p2 = Relation.box [| q 2; q 0 |] [| q 3; q 1 |] in
        let o1 = Option.get (Convex_obs.make ~config:cfg rng p1) in
        let o2 = Option.get (Convex_obs.make ~config:cfg rng p2) in
        let r = Reconstruct.union_estimate rng [ o1; o2 ] ~n:120 in
        let reference x = Relation.mem_float (Relation.union p1 p2) x in
        let sd =
          Reconstruct.symmetric_difference_mc rng ~samples:6000 r reference ~lo:[| 0.; 0. |]
            ~hi:[| 3.; 1. |]
        in
        Alcotest.(check bool) (Printf.sprintf "sd=%.4f" sd) true (sd < 0.25);
        (* 2D materialization *)
        match Reconstruct.to_relation_2d r with
        | Some rel -> Alcotest.(check int) "two tuples" 2 (List.length (Relation.tuples rel))
        | None -> Alcotest.fail "expected relation");
  ]

let sat_tests =
  [
    t "exact volume equals cell decomposition" (fun () ->
        (* (x1 ∨ x2): cells T*, FT (in {F,M,T}^2) *)
        let v = Sat_encode.exact_volume ~nvars:2 [ [ 1; 2 ] ] in
        (* P(clause true) = 1 - P(x1 not T)·... careful: literal true iff coord in its slab.
           P = 1 - (3/4)·(3/4) = 7/16 *)
        Alcotest.(check string) "7/16" "7/16" (Q.to_string v));
    t "models and satisfiability" (fun () ->
        let cnf = [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ] ] in
        Alcotest.(check int) "models" 2 (Sat_encode.count_models ~nvars:3 cnf);
        Alcotest.(check bool) "sat" true (Sat_encode.is_satisfiable ~nvars:3 cnf);
        let unsat = [ [ 1 ]; [ -1 ] ] in
        Alcotest.(check bool) "unsat" false (Sat_encode.is_satisfiable ~nvars:1 unsat);
        Alcotest.(check string) "vol 0" "0" (Q.to_string (Sat_encode.exact_volume ~nvars:1 unsat)));
    t "exact volume consistent with Lasserre on tiny instance" (fun () ->
        let cnf = [ [ 1; 2 ] ] in
        let rel =
          Relation.inter
            (Sat_encode.clause_relation ~nvars:2 [ 1; 2 ])
            (Relation.unit_cube 2)
        in
        let lasserre = VE.volume_relation rel in
        Alcotest.(check string) "agree" (Q.to_string (Sat_encode.exact_volume ~nvars:2 cnf))
          (Q.to_string lasserre));
    t "random 3cnf shape" (fun () ->
        let rng = Rng.create 35 in
        let cnf = Sat_encode.random_3cnf rng ~nvars:6 ~clauses:10 in
        Alcotest.(check int) "10 clauses" 10 (List.length cnf);
        List.iter
          (fun clause ->
            Alcotest.(check int) "3 literals" 3 (List.length clause);
            let vars = List.map abs clause in
            Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare vars)))
          cnf);
    ts "clause observables sample inside the clause region" (fun () ->
        let rng = Rng.create 36 in
        match Sat_encode.clause_observables ~config:cfg rng ~nvars:3 [ [ 1; -2 ] ] with
        | [ clause ] ->
            let r = Sat_encode.clause_relation ~nvars:3 [ 1; -2 ] in
            for _ = 1 to 50 do
              let x = Observable.sample_exn clause rng params in
              Alcotest.(check bool) "in clause" true (Relation.mem_float ~slack:1e-6 r x)
            done
        | _ -> Alcotest.fail "expected one observable");
  ]


let bisection_tests =
  [
    ts "JVV bisection generator is roughly uniform on a triangle" (fun () ->
        let rng = Rng.create 60 in
        let tri = P.simplex 2 in
        let pts = Bisection_gen.sample_many rng ~volume_budget:150 ~bisections:4 tri ~n:30 in
        Alcotest.(check bool) "got samples" true (List.length pts >= 25);
        List.iter (fun p -> Alcotest.(check bool) "inside" true (P.mem ~slack:1e-6 tri p)) pts;
        (* mean should approach the centroid (1/3, 1/3) *)
        let n = float_of_int (List.length pts) in
        let mx = List.fold_left (fun acc p -> acc +. p.(0)) 0.0 pts /. n in
        Alcotest.(check bool) (Printf.sprintf "mean x=%.3f" mx) true (Float.abs (mx -. (1.0 /. 3.0)) < 0.13));
    t "empty body yields none" (fun () ->
        let empty = P.make ~dim:1 [| [| 1.0 |]; [| -1.0 |] |] [| -1.0; -1.0 |] in
        Alcotest.(check bool) "none" true
          (Option.is_none (Bisection_gen.sample (Rng.create 0) empty)));
    t "unbounded body yields none" (fun () ->
        let hs = P.make ~dim:2 [| [| 1.0; 0.0 |] |] [| 1.0 |] in
        Alcotest.(check bool) "none" true
          (Option.is_none (Bisection_gen.sample (Rng.create 0) hs)));
  ]


let failure_mode_tests =
  [
    ts "direct walk on a disconnected union never crosses (why Algorithm 1 exists)" (fun () ->
        (* The paper warns that a naive walk on a union fails: start in one
           component of two disjoint boxes and the lattice walk can never
           reach the other. *)
        let module W = Scdb_sampling.Walk in
        let module G = Scdb_sampling.Grid in
        let rng = Rng.create 80 in
        let r = Relation.union (Relation.box [| q 0 |] [| q 1 |]) (Relation.box [| q 3 |] [| q 4 |]) in
        let mem x = Relation.mem_float ~slack:1e-9 r x in
        let grid = G.make ~step:0.125 ~dim:1 in
        for _ = 1 to 30 do
          let p = W.sample rng ~grid ~mem ~start:[| 0.5 |] ~steps:2000 in
          Alcotest.(check bool) "stuck in first component" true (p.(0) <= 1.0 +. 1e-9)
        done;
        (* while the Union observable reaches both *)
        let cfg = Convex_obs.practical_config in
        let o1 = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 0 |] [| q 1 |])) in
        let o2 = Option.get (Convex_obs.make ~config:cfg rng (Relation.box [| q 3 |] [| q 4 |])) in
        let u = Union.union2 o1 o2 in
        let saw_right = ref false in
        for _ = 1 to 60 do
          if (Observable.sample_exn u rng params).(0) > 2.0 then saw_right := true
        done;
        Alcotest.(check bool) "union generator reaches both" true !saw_right);
    ts "median boosting reduces estimator spread" (fun () ->
        let rng = Rng.create 81 in
        let r = Relation.unit_cube 2 in
        (* deliberately noisy base estimator: tiny budget *)
        let noisy =
          Option.get
            (Convex_obs.make
               ~config:{ Convex_obs.practical_config with Convex_obs.volume_budget = Scdb_sampling.Volume.Practical 60 }
               rng r)
        in
        let boosted = Boost.boost_observable noisy in
        let spread obs n =
          let vals = List.init n (fun _ -> Observable.volume obs rng ~eps:0.3 ~delta:0.2) in
          let mn = List.fold_left Float.min infinity vals
          and mx = List.fold_left Float.max neg_infinity vals in
          mx -. mn
        in
        let s_base = spread noisy 9 and s_boost = spread boosted 5 in
        Alcotest.(check bool)
          (Printf.sprintf "spread %.3f -> %.3f" s_base s_boost)
          true
          (s_boost <= s_base +. 1e-9));
    t "runs_for is odd and grows with confidence" (fun () ->
        Alcotest.(check bool) "odd" true (Boost.runs_for ~delta:0.2 mod 2 = 1);
        Alcotest.(check bool) "monotone" true (Boost.runs_for ~delta:0.01 > Boost.runs_for ~delta:0.2));
  ]

let suites =
  [
    ("core.params", params_tests);
    ("core.convex", convex_tests);
    ("core.union", union_tests);
    ("core.inter_diff", inter_diff_tests);
    ("core.project", project_tests);
    ("core.fixed_dim", fixed_dim_tests);
    ("core.reconstruct", reconstruct_tests);
    ("core.sat", sat_tests);
    ("core.bisection", bisection_tests);
    ("core.failure_modes", failure_mode_tests);
  ]
